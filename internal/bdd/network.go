package bdd

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/obsv/trace"
)

// NetworkBDDs holds the global BDDs of a combinational network: one
// function per node, expressed over the circuit inputs (primary inputs
// followed by flip-flop outputs, in declaration order).
type NetworkBDDs struct {
	M *Manager
	// VarOf maps a PI or FF node to its BDD variable index.
	VarOf map[logic.NodeID]int
	// Fn maps every live node to its global function.
	Fn map[logic.NodeID]Ref
	// Vars lists the source nodes in variable order.
	Vars []logic.NodeID

	// roots lists every Fn value in build order, so reordering can pin
	// them all deterministically.
	roots []Ref
}

// ReorderPolicy controls dynamic variable reordering during a network
// build. When enabled, the builder sifts the manager whenever the live
// node count crosses a threshold, then doubles the trigger — the classic
// dynamic-reordering schedule.
type ReorderPolicy struct {
	// Enable turns dynamic reordering on.
	Enable bool
	// Threshold is the live node count that triggers the first reorder.
	// 0 means min(4096, Budget.MaxNodes/2), floored at 64.
	Threshold int
	// MaxGrowth and MaxVars are passed through to ReorderOptions.
	MaxGrowth float64
	MaxVars   int
}

// threshold resolves the first trigger point against a budget.
func (p ReorderPolicy) threshold(b Budget) int {
	th := p.Threshold
	if th <= 0 {
		th = 4096
		if b.MaxNodes > 0 && b.MaxNodes/2 < th {
			th = b.MaxNodes / 2
		}
	}
	if th < 64 {
		th = 64
	}
	return th
}

// BuildOptions bundles the knobs of a budgeted, optionally reordering
// network build. The zero value is exactly FromNetwork.
type BuildOptions struct {
	Budget  Budget
	Reorder ReorderPolicy
}

// FromNetwork builds global BDDs for every node of the network. Primary
// inputs take variables 0..|PI|-1 in declaration order, then flip-flop
// outputs. Sequential networks are handled by treating FF outputs as free
// inputs (the standard combinational abstraction).
func FromNetwork(nw *logic.Network) (*NetworkBDDs, error) {
	return FromNetworkCtx(context.Background(), nw, Budget{})
}

// FromNetworkCtx is FromNetwork under a resource budget and a context.
// When the manager's budget trips or ctx is cancelled mid-build, the
// partial BDDs are discarded and the manager's typed error (a *BudgetError
// matching ErrBudgetExceeded, or the context error) is returned. With a
// zero budget and a background context it is exactly FromNetwork.
func FromNetworkCtx(ctx context.Context, nw *logic.Network, b Budget) (*NetworkBDDs, error) {
	return FromNetworkOpts(ctx, nw, BuildOptions{Budget: b})
}

// FromNetworkOpts is FromNetworkCtx with an explicit options bundle,
// notably dynamic variable reordering: with Reorder.Enable the build
// sifts the variable order whenever the live node count crosses the
// policy threshold, which lets circuits whose declaration order is
// pathological (e.g. wide comparators) fit budgets the fixed order
// cannot.
func FromNetworkOpts(ctx context.Context, nw *logic.Network, opt BuildOptions) (*NetworkBDDs, error) {
	ctx, sp := trace.Start(ctx, "bdd.build")
	nb, err := fromNetworkOpts(ctx, nw, opt)
	if sp != nil {
		if nb != nil {
			sp.SetAttr("nodes", nb.M.Size())
			sp.SetAttr("steps", nb.M.Steps())
		}
		if opt.Reorder.Enable {
			sp.SetAttr("reorder", true)
		}
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return nb, err
}

func fromNetworkOpts(ctx context.Context, nw *logic.Network, opt BuildOptions) (*NetworkBDDs, error) {
	srcs := append(append([]logic.NodeID(nil), nw.PIs()...), nw.FFs()...)
	m := New(len(srcs))
	m.SetBudget(opt.Budget)
	m.SetContext(ctx)
	nb := &NetworkBDDs{
		M:     m,
		VarOf: make(map[logic.NodeID]int, len(srcs)),
		Fn:    make(map[logic.NodeID]Ref),
		Vars:  srcs,
	}
	for i, s := range srcs {
		nb.VarOf[s] = i
		f := m.Var(i)
		nb.Fn[s] = f
		nb.roots = append(nb.roots, f)
	}
	next := 0
	if opt.Reorder.Enable {
		next = opt.Reorder.threshold(opt.Budget)
	}
	order, err := nw.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return nil, &BudgetError{Reason: err.Error(), Nodes: m.Size(), Steps: m.Steps()}
		}
		n := nw.Node(id)
		var f Ref
		switch n.Type {
		case logic.Const0:
			f = False
		case logic.Const1:
			f = True
		default:
			args := make([]Ref, len(n.Fanin))
			for i, fi := range n.Fanin {
				g, ok := nb.Fn[fi]
				if !ok {
					return nil, fmt.Errorf("bdd: fanin %d of %q not yet built", fi, n.Name)
				}
				args[i] = g
			}
			f, err = applyGate(m, n.Type, args)
			if err != nil {
				return nil, err
			}
		}
		if err := m.Err(); err != nil {
			return nil, err
		}
		nb.Fn[id] = f
		nb.roots = append(nb.roots, f)
		if opt.Reorder.Enable && m.live >= next {
			if _, err := m.Reorder(nb.roots, ReorderOptions{
				MaxGrowth: opt.Reorder.MaxGrowth,
				MaxVars:   opt.Reorder.MaxVars,
			}); err != nil {
				return nil, err
			}
			next = 2 * m.live
			if th := opt.Reorder.threshold(opt.Budget); next < th {
				next = th
			}
		}
	}
	return nb, nil
}

// Reorder sifts the manager's variable order, pinning every node
// function ever built so all Fn refs stay valid. It returns the sifting
// statistics.
func (nb *NetworkBDDs) Reorder(opt ReorderOptions) (ReorderStats, error) {
	roots := nb.roots
	if roots == nil {
		// A NetworkBDDs assembled by hand: fall back to the Fn map in
		// deterministic NodeID order.
		ids := make([]logic.NodeID, 0, len(nb.Fn))
		for id := range nb.Fn {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			roots = append(roots, nb.Fn[id])
		}
	}
	return nb.M.Reorder(roots, opt)
}

func applyGate(m *Manager, t logic.GateType, args []Ref) (Ref, error) {
	switch t {
	case logic.Buf:
		return args[0], nil
	case logic.Not:
		return m.Not(args[0]), nil
	case logic.And:
		return m.And(args...), nil
	case logic.Or:
		return m.Or(args...), nil
	case logic.Nand:
		return m.Not(m.And(args...)), nil
	case logic.Nor:
		return m.Not(m.Or(args...)), nil
	case logic.Xor:
		return m.Xor(args...), nil
	case logic.Xnor:
		return m.Xnor(args...), nil
	}
	return False, fmt.Errorf("bdd: unsupported gate type %s", t)
}
