package bdd

import (
	"math"
	"testing"

	"repro/internal/logic"
)

func TestFromNetworkMux(t *testing.T) {
	nw := logic.New("mux")
	s := nw.MustInput("s")
	a := nw.MustInput("a")
	b := nw.MustInput("b")
	ns := nw.MustGate("ns", logic.Not, s)
	t0 := nw.MustGate("t0", logic.And, ns, a)
	t1 := nw.MustGate("t1", logic.And, s, b)
	o := nw.MustGate("o", logic.Or, t0, t1)
	if err := nw.MarkOutput(o); err != nil {
		t.Fatal(err)
	}
	nb, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	m := nb.M
	want := m.ITE(m.Var(nb.VarOf[s]), m.Var(nb.VarOf[b]), m.Var(nb.VarOf[a]))
	if nb.Fn[o] != want {
		t.Error("mux BDD does not match ITE(s,b,a)")
	}
	// Output probability with uniform inputs: P(mux)=1/2.
	if p := m.Probability(nb.Fn[o], nil); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(mux)=%v, want 0.5", p)
	}
}

func TestFromNetworkAllGates(t *testing.T) {
	nw := logic.New("g")
	a := nw.MustInput("a")
	b := nw.MustInput("b")
	gates := map[string]logic.NodeID{
		"and":  nw.MustGate("g_and", logic.And, a, b),
		"or":   nw.MustGate("g_or", logic.Or, a, b),
		"nand": nw.MustGate("g_nand", logic.Nand, a, b),
		"nor":  nw.MustGate("g_nor", logic.Nor, a, b),
		"xor":  nw.MustGate("g_xor", logic.Xor, a, b),
		"xnor": nw.MustGate("g_xnor", logic.Xnor, a, b),
		"not":  nw.MustGate("g_not", logic.Not, a),
		"buf":  nw.MustGate("g_buf", logic.Buf, b),
	}
	for _, id := range gates {
		if err := nw.MarkOutput(id); err != nil {
			t.Fatal(err)
		}
	}
	k0, _ := nw.AddConst("k0", false)
	k1, _ := nw.AddConst("k1", true)
	nb, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	m := nb.M
	va, vb := m.Var(nb.VarOf[a]), m.Var(nb.VarOf[b])
	checks := map[string]Ref{
		"and": m.And(va, vb), "or": m.Or(va, vb),
		"nand": m.Not(m.And(va, vb)), "nor": m.Not(m.Or(va, vb)),
		"xor": m.Xor(va, vb), "xnor": m.Xnor(va, vb),
		"not": m.Not(va), "buf": vb,
	}
	for name, want := range checks {
		if nb.Fn[gates[name]] != want {
			t.Errorf("gate %s has wrong BDD", name)
		}
	}
	if nb.Fn[k0] != False || nb.Fn[k1] != True {
		t.Error("constants map to terminals")
	}
}

func TestFromNetworkSequential(t *testing.T) {
	// FF outputs become free variables after the PIs.
	nw := logic.New("seq")
	x := nw.MustInput("x")
	c0, _ := nw.AddConst("c0", false)
	q, err := nw.AddDFF("q", c0, false)
	if err != nil {
		t.Fatal(err)
	}
	d := nw.MustGate("d", logic.Xor, x, q)
	if err := nw.ReplaceFanin(q, c0, d); err != nil {
		t.Fatal(err)
	}
	if err := nw.DeleteNode(c0); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(q); err != nil {
		t.Fatal(err)
	}
	nb, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Vars) != 2 {
		t.Fatalf("want 2 BDD variables (x, q), got %d", len(nb.Vars))
	}
	m := nb.M
	if nb.Fn[d] != m.Xor(m.Var(nb.VarOf[x]), m.Var(nb.VarOf[q])) {
		t.Error("next-state function wrong")
	}
}

func TestFromNetworkAgainstTruthTable(t *testing.T) {
	// Cross-check BDD evaluation with exhaustive gate-level simulation on a
	// nontrivial reconvergent circuit.
	nw := logic.New("reconv")
	var pis []logic.NodeID
	for _, n := range []string{"a", "b", "c", "d"} {
		pis = append(pis, nw.MustInput(n))
	}
	g1 := nw.MustGate("g1", logic.Nand, pis[0], pis[1])
	g2 := nw.MustGate("g2", logic.Nor, pis[1], pis[2])
	g3 := nw.MustGate("g3", logic.Xor, g1, g2)
	g4 := nw.MustGate("g4", logic.And, g3, pis[3], g1)
	o := nw.MustGate("o", logic.Or, g4, g2)
	if err := nw.MarkOutput(o); err != nil {
		t.Fatal(err)
	}
	nb, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	for mt := 0; mt < 16; mt++ {
		in := make([]bool, 4)
		for i := range in {
			in[i] = mt&(1<<i) != 0
		}
		out, err := nw.EvalComb(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := nb.M.Eval(nb.Fn[o], in); got != out[0] {
			t.Errorf("minterm %d: BDD=%v sim=%v", mt, got, out[0])
		}
	}
}
