package circuits

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/sim"
)

func TestRippleAdderExhaustive(t *testing.T) {
	const n = 4
	nw, err := RippleAdder(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			for c := 0; c < 2; c++ {
				in := append(append(sim.UintToBits(uint(a), n), sim.UintToBits(uint(b), n)...), c == 1)
				out, err := nw.EvalComb(in)
				if err != nil {
					t.Fatal(err)
				}
				got := sim.BitsToUint(out)
				want := uint(a + b + c)
				if got != want {
					t.Fatalf("add(%d,%d,%d) = %d, want %d", a, b, c, got, want)
				}
			}
		}
	}
}

func TestCLAAdderMatchesRipple(t *testing.T) {
	const n = 5
	cla, err := CLAAdder(n)
	if err != nil {
		t.Fatal(err)
	}
	rip, err := RippleAdder(n)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := logic.Equivalent(cla, rip)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("CLA and ripple adders differ")
	}
	// CLA must be shallower for nontrivial widths.
	_, dCLA, _ := cla.Levels()
	_, dRip, _ := rip.Levels()
	if dCLA >= dRip {
		t.Errorf("CLA depth %d not shallower than ripple depth %d", dCLA, dRip)
	}
}

func TestArrayMultiplier(t *testing.T) {
	const n = 4
	nw, err := ArrayMultiplier(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			in := append(sim.UintToBits(uint(a), n), sim.UintToBits(uint(b), n)...)
			out, err := nw.EvalComb(in)
			if err != nil {
				t.Fatal(err)
			}
			got := sim.BitsToUint(out)
			want := uint(a * b)
			if got != want {
				t.Fatalf("mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestComparator(t *testing.T) {
	const n = 4
	nw, err := Comparator(n)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 1<<n; c++ {
		for d := 0; d < 1<<n; d++ {
			in := append(sim.UintToBits(uint(c), n), sim.UintToBits(uint(d), n)...)
			out, err := nw.EvalComb(in)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != (c > d) {
				t.Fatalf("cmp(%d,%d) = %v", c, d, out[0])
			}
		}
	}
}

func TestParityTreeAndChainEquivalent(t *testing.T) {
	for _, n := range []int{2, 3, 7, 8} {
		tree, err := ParityTree(n)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := ParityChain(n)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := logic.Equivalent(tree, chain)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("n=%d: tree and chain parity differ", n)
		}
	}
	// Depth: chain is n-1, tree is ceil(log2 n).
	tree, _ := ParityTree(8)
	chain, _ := ParityChain(8)
	_, dt, _ := tree.Levels()
	_, dc, _ := chain.Levels()
	if dt != 3 || dc != 7 {
		t.Errorf("depths tree=%d chain=%d, want 3 and 7", dt, dc)
	}
}

func TestDecoder(t *testing.T) {
	const n = 3
	nw, err := Decoder(n)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<n; a++ {
		out, err := nw.EvalComb(sim.UintToBits(uint(a), n))
		if err != nil {
			t.Fatal(err)
		}
		for m, v := range out {
			if v != (m == a) {
				t.Fatalf("decode(%d): output %d = %v", a, m, v)
			}
		}
	}
}

func TestALU(t *testing.T) {
	const n = 4
	nw, err := ALU(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		a := r.Intn(1 << n)
		b := r.Intn(1 << n)
		op := r.Intn(4)
		in := append(sim.UintToBits(uint(a), n), sim.UintToBits(uint(b), n)...)
		in = append(in, op&1 != 0, op&2 != 0)
		out, err := nw.EvalComb(in)
		if err != nil {
			t.Fatal(err)
		}
		got := sim.BitsToUint(out)
		var want uint
		switch op {
		case 0:
			want = uint(a & b)
		case 1:
			want = uint(a | b)
		case 2:
			want = uint(a ^ b)
		case 3:
			want = uint(a+b) & ((1 << (n + 1)) - 1) // includes cout
		}
		if got != want {
			t.Fatalf("alu op=%d (%d,%d) = %d, want %d", op, a, b, got, want)
		}
	}
}

func TestMuxTree(t *testing.T) {
	const k = 3
	nw, err := MuxTree(k)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		data := r.Intn(1 << (1 << k))
		sel := r.Intn(1 << k)
		in := append(sim.UintToBits(uint(data), 1<<k), sim.UintToBits(uint(sel), k)...)
		out, err := nw.EvalComb(in)
		if err != nil {
			t.Fatal(err)
		}
		want := data&(1<<sel) != 0
		if out[0] != want {
			t.Fatalf("mux(data=%x, sel=%d) = %v, want %v", data, sel, out[0], want)
		}
	}
}

func TestGeneratorArgumentValidation(t *testing.T) {
	if _, err := RippleAdder(0); err == nil {
		t.Error("RippleAdder(0) should fail")
	}
	if _, err := CLAAdder(-1); err == nil {
		t.Error("CLAAdder(-1) should fail")
	}
	if _, err := ArrayMultiplier(1); err == nil {
		t.Error("ArrayMultiplier(1) should fail")
	}
	if _, err := Comparator(0); err == nil {
		t.Error("Comparator(0) should fail")
	}
	if _, err := ParityTree(1); err == nil {
		t.Error("ParityTree(1) should fail")
	}
	if _, err := ParityChain(1); err == nil {
		t.Error("ParityChain(1) should fail")
	}
	if _, err := Decoder(11); err == nil {
		t.Error("Decoder(11) should fail")
	}
	if _, err := ALU(0); err == nil {
		t.Error("ALU(0) should fail")
	}
	if _, err := MuxTree(0); err == nil {
		t.Error("MuxTree(0) should fail")
	}
}

func TestAllGeneratorsPassCheck(t *testing.T) {
	gens := map[string]func() (*logic.Network, error){
		"ripple8": func() (*logic.Network, error) { return RippleAdder(8) },
		"cla8":    func() (*logic.Network, error) { return CLAAdder(8) },
		"mult6":   func() (*logic.Network, error) { return ArrayMultiplier(6) },
		"cmp16":   func() (*logic.Network, error) { return Comparator(16) },
		"par16":   func() (*logic.Network, error) { return ParityTree(16) },
		"parch16": func() (*logic.Network, error) { return ParityChain(16) },
		"dec5":    func() (*logic.Network, error) { return Decoder(5) },
		"alu8":    func() (*logic.Network, error) { return ALU(8) },
		"mux16":   func() (*logic.Network, error) { return MuxTree(4) },
	}
	for name, g := range gens {
		nw, err := g()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := nw.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// The dot-separated module prefixes in generator gate names are a stable
// interface: internal/obsv/profile aggregates switched capacitance along
// them, so a silent rename would corrupt recorded attribution profiles.
func TestHierarchicalNamesStable(t *testing.T) {
	cases := []struct {
		gen   func() (*logic.Network, error)
		names []string
	}{
		{func() (*logic.Network, error) { return RippleAdder(4) },
			[]string{"fa0.axb", "fa0.s", "fa0.ab", "fa0.cc", "fa0.co", "fa3.s"}},
		{func() (*logic.Network, error) { return CLAAdder(4) },
			[]string{"pg0.g", "pg0.p", "cy2.t0", "cy2.o", "s0"}},
		{func() (*logic.Network, error) { return ArrayMultiplier(3) },
			[]string{"pp.p0_0", "pp.p2_2", "fa1.xy", "fa1.s", "fa1.c", "ha0.s"}},
		{func() (*logic.Network, error) { return Comparator(3) },
			[]string{"bit0.nd", "bit0.gt", "bit1.eq", "bit1.kp", "bit2.acc"}},
		{func() (*logic.Network, error) { return ParityTree(8) },
			[]string{"lvl0.p0", "lvl1.p1", "lvl2.p0"}},
		{func() (*logic.Network, error) { return ALU(2) },
			[]string{"dec.selAdd", "bit0.and", "bit0.sum", "bit1.f", "cout"}},
		{func() (*logic.Network, error) { return MuxTree(2) },
			[]string{"lvl0.ns", "lvl0.a0", "lvl1.o0"}},
	}
	for _, c := range cases {
		nw, err := c.gen()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range c.names {
			if nw.ByName(name) == logic.InvalidNode {
				t.Errorf("%s: expected stable node name %q missing", nw.Name, name)
			}
		}
	}
}

func TestGeneratorRegistry(t *testing.T) {
	names := GeneratorNames()
	if len(names) == 0 {
		t.Fatal("empty generator registry")
	}
	for _, name := range names {
		nw, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if err := nw.Check(); err != nil {
			t.Fatalf("Named(%q) built an inconsistent network: %v", name, err)
		}
		// Fresh instance per call: mutating one build must not leak into
		// the next (lpserverd caches and clones these).
		again, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		if nw == again {
			t.Fatalf("Named(%q) returned a shared instance", name)
		}
	}
	if _, err := Named("no-such-circuit"); err == nil {
		t.Fatal("unknown circuit name did not error")
	}
	// Generators() hands out a copy of the table.
	reg := Generators()
	delete(reg, "mult4")
	if _, err := Named("mult4"); err != nil {
		t.Fatalf("mutating the Generators() copy broke the registry: %v", err)
	}
}
