// Package circuits generates the parameterized benchmark netlists used by
// the experiments: adders, multipliers, comparators, parity trees, decoders
// and a small ALU. These stand in for the MCNC/ISCAS benchmark suites of
// the surveyed papers — they exercise the same structural regimes
// (carry chains, reconvergent fanout, unbalanced path delays).
//
// Gate names are hierarchical: dot-separated segments name the module
// instance a gate belongs to ("fa3.s" = sum output of full-adder cell 3),
// and the power-attribution profiler (internal/obsv/profile) aggregates
// per-node switched capacitance along these prefixes. The names are part
// of the generators' stable interface — renaming a module breaks recorded
// profiles and folded-stack baselines.
package circuits

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// inputBus declares width named inputs name0..name{width-1}, LSB first.
func inputBus(nw *logic.Network, name string, width int) []logic.NodeID {
	ids := make([]logic.NodeID, width)
	for i := range ids {
		ids[i] = nw.MustInput(fmt.Sprintf("%s%d", name, i))
	}
	return ids
}

// RippleAdder builds an n-bit ripple-carry adder with inputs a, b and
// carry-in cin, outputs s0..s{n-1} and cout. The carry chain makes its
// high-order outputs deep and glitch-prone — the canonical path-balancing
// target.
func RippleAdder(n int) (*logic.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: RippleAdder width %d", n)
	}
	nw := logic.New(fmt.Sprintf("radd%d", n))
	a := inputBus(nw, "a", n)
	b := inputBus(nw, "b", n)
	c := nw.MustInput("cin")
	for i := 0; i < n; i++ {
		axb := nw.MustGate(fmt.Sprintf("fa%d.axb", i), logic.Xor, a[i], b[i])
		s := nw.MustGate(fmt.Sprintf("fa%d.s", i), logic.Xor, axb, c)
		ab := nw.MustGate(fmt.Sprintf("fa%d.ab", i), logic.And, a[i], b[i])
		ac := nw.MustGate(fmt.Sprintf("fa%d.cc", i), logic.And, axb, c)
		c = nw.MustGate(fmt.Sprintf("fa%d.co", i), logic.Or, ab, ac)
		if err := nw.MarkOutput(s); err != nil {
			return nil, err
		}
	}
	if err := nw.MarkOutput(c); err != nil {
		return nil, err
	}
	return nw, nil
}

// CLAAdder builds an n-bit carry-lookahead adder (single-level lookahead
// over all n bits). Its carry tree is much shallower than the ripple
// chain: same function, different path-delay profile.
func CLAAdder(n int) (*logic.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: CLAAdder width %d", n)
	}
	nw := logic.New(fmt.Sprintf("cla%d", n))
	a := inputBus(nw, "a", n)
	b := inputBus(nw, "b", n)
	cin := nw.MustInput("cin")
	g := make([]logic.NodeID, n)
	p := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		g[i] = nw.MustGate(fmt.Sprintf("pg%d.g", i), logic.And, a[i], b[i])
		p[i] = nw.MustGate(fmt.Sprintf("pg%d.p", i), logic.Xor, a[i], b[i])
	}
	// c[i+1] = g[i] + p[i]g[i-1] + ... + p[i]..p[0]cin
	carries := make([]logic.NodeID, n+1)
	carries[0] = cin
	for i := 0; i < n; i++ {
		terms := []logic.NodeID{g[i]}
		for j := i; j >= 0; j-- {
			// p[i] & p[i-1] & ... & p[j] & (g[j-1] or cin)
			ands := make([]logic.NodeID, 0, i-j+2)
			for k := j; k <= i; k++ {
				ands = append(ands, p[k])
			}
			if j == 0 {
				ands = append(ands, cin)
			} else {
				ands = append(ands, g[j-1])
			}
			var t logic.NodeID
			if len(ands) == 1 {
				t = ands[0]
			} else {
				t = nw.MustGate(fmt.Sprintf("cy%d.t%d", i+1, j), logic.And, ands...)
			}
			terms = append(terms, t)
		}
		if len(terms) == 1 {
			carries[i+1] = terms[0]
		} else {
			carries[i+1] = nw.MustGate(fmt.Sprintf("cy%d.o", i+1), logic.Or, terms...)
		}
	}
	for i := 0; i < n; i++ {
		s := nw.MustGate(fmt.Sprintf("s%d", i), logic.Xor, p[i], carries[i])
		if err := nw.MarkOutput(s); err != nil {
			return nil, err
		}
	}
	if err := nw.MarkOutput(carries[n]); err != nil {
		return nil, err
	}
	return nw, nil
}

// ArrayMultiplier builds an n×n unsigned array multiplier producing a
// 2n-bit product, using column-wise carry-save reduction with full and
// half adders. Array multipliers are the survey's showcase for glitch
// power ([25]): partial-product carries ripple through a 2-D array with
// very unequal path depths.
func ArrayMultiplier(n int) (*logic.Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: ArrayMultiplier width %d", n)
	}
	nw := logic.New(fmt.Sprintf("mult%d", n))
	a := inputBus(nw, "a", n)
	b := inputBus(nw, "b", n)
	// Column w collects all bits of weight 2^w.
	cols := make([][]logic.NodeID, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp := nw.MustGate(fmt.Sprintf("pp.p%d_%d", i, j), logic.And, a[j], b[i])
			cols[i+j] = append(cols[i+j], pp)
		}
	}
	seq := 0
	for w := 0; w < 2*n; w++ {
		for len(cols[w]) > 1 {
			if len(cols[w]) >= 3 {
				x, y, z := cols[w][0], cols[w][1], cols[w][2]
				cols[w] = cols[w][3:]
				tag := fmt.Sprintf("fa%d", seq)
				seq++
				xy := nw.MustGate(tag+".xy", logic.Xor, x, y)
				s := nw.MustGate(tag+".s", logic.Xor, xy, z)
				t1 := nw.MustGate(tag+".t1", logic.And, x, y)
				t2 := nw.MustGate(tag+".t2", logic.And, xy, z)
				c := nw.MustGate(tag+".c", logic.Or, t1, t2)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], c)
			} else {
				x, y := cols[w][0], cols[w][1]
				cols[w] = cols[w][2:]
				tag := fmt.Sprintf("ha%d", seq)
				seq++
				s := nw.MustGate(tag+".s", logic.Xor, x, y)
				c := nw.MustGate(tag+".c", logic.And, x, y)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], c)
			}
		}
	}
	for w := 0; w < 2*n; w++ {
		var out logic.NodeID
		if len(cols[w]) == 1 {
			out = cols[w][0]
		} else {
			z, err := nw.AddConst(fmt.Sprintf("z%d", w), false)
			if err != nil {
				return nil, err
			}
			out = z
		}
		if err := nw.MarkOutput(out); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// Comparator builds the survey's Figure 1 circuit: an n-bit magnitude
// comparator computing C > D. It is implemented MSB-first: the output is
// c[n-1]·!d[n-1] + eq[n-1]·( c[n-2]·!d[n-2] + eq[n-2]·( ... )).
func Comparator(n int) (*logic.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: Comparator width %d", n)
	}
	nw := logic.New(fmt.Sprintf("cmp%d", n))
	c := inputBus(nw, "c", n)
	d := inputBus(nw, "d", n)
	var acc logic.NodeID // "C > D considering bits below i"
	for i := 0; i < n; i++ {
		nd := nw.MustGate(fmt.Sprintf("bit%d.nd", i), logic.Not, d[i])
		gt := nw.MustGate(fmt.Sprintf("bit%d.gt", i), logic.And, c[i], nd)
		if i == 0 {
			acc = gt
			continue
		}
		eq := nw.MustGate(fmt.Sprintf("bit%d.eq", i), logic.Xnor, c[i], d[i])
		keep := nw.MustGate(fmt.Sprintf("bit%d.kp", i), logic.And, eq, acc)
		acc = nw.MustGate(fmt.Sprintf("bit%d.acc", i), logic.Or, gt, keep)
	}
	if err := nw.MarkOutput(acc); err != nil {
		return nil, err
	}
	return nw, nil
}

// ParityTree builds a balanced XOR tree over n inputs.
func ParityTree(n int) (*logic.Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: ParityTree width %d", n)
	}
	nw := logic.New(fmt.Sprintf("par%d", n))
	layer := inputBus(nw, "x", n)
	lvl := 0
	for len(layer) > 1 {
		var next []logic.NodeID
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, nw.MustGate(fmt.Sprintf("lvl%d.p%d", lvl, i/2), logic.Xor, layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
		lvl++
	}
	if err := nw.MarkOutput(layer[0]); err != nil {
		return nil, err
	}
	return nw, nil
}

// ParityChain builds a linear (maximally unbalanced) XOR chain over n
// inputs — same function as ParityTree, worst-case path imbalance.
func ParityChain(n int) (*logic.Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: ParityChain width %d", n)
	}
	nw := logic.New(fmt.Sprintf("parch%d", n))
	x := inputBus(nw, "x", n)
	acc := x[0]
	for i := 1; i < n; i++ {
		acc = nw.MustGate(fmt.Sprintf("p%d", i), logic.Xor, acc, x[i])
	}
	if err := nw.MarkOutput(acc); err != nil {
		return nil, err
	}
	return nw, nil
}

// Decoder builds an n-to-2^n one-hot decoder.
func Decoder(n int) (*logic.Network, error) {
	if n < 1 || n > 10 {
		return nil, fmt.Errorf("circuits: Decoder width %d", n)
	}
	nw := logic.New(fmt.Sprintf("dec%d", n))
	a := inputBus(nw, "a", n)
	na := make([]logic.NodeID, n)
	for i := range a {
		na[i] = nw.MustGate(fmt.Sprintf("na%d", i), logic.Not, a[i])
	}
	for m := 0; m < 1<<n; m++ {
		lits := make([]logic.NodeID, n)
		for i := 0; i < n; i++ {
			if m&(1<<i) != 0 {
				lits[i] = a[i]
			} else {
				lits[i] = na[i]
			}
		}
		var y logic.NodeID
		if n == 1 {
			y = nw.MustGate(fmt.Sprintf("y%d", m), logic.Buf, lits[0])
		} else {
			y = nw.MustGate(fmt.Sprintf("y%d", m), logic.And, lits...)
		}
		if err := nw.MarkOutput(y); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// ALU computes, per op code on inputs a, b (n bits):
//
//	00 AND, 01 OR, 10 XOR, 11 ADD (with carry out)
func ALU(n int) (*logic.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: ALU width %d", n)
	}
	nw := logic.New(fmt.Sprintf("alu%d", n))
	a := inputBus(nw, "a", n)
	b := inputBus(nw, "b", n)
	op0 := nw.MustInput("op0")
	op1 := nw.MustInput("op1")
	nop0 := nw.MustGate("dec.nop0", logic.Not, op0)
	nop1 := nw.MustGate("dec.nop1", logic.Not, op1)
	selAnd := nw.MustGate("dec.selAnd", logic.And, nop1, nop0)
	selOr := nw.MustGate("dec.selOr", logic.And, nop1, op0)
	selXor := nw.MustGate("dec.selXor", logic.And, op1, nop0)
	selAdd := nw.MustGate("dec.selAdd", logic.And, op1, op0)
	// Carry chain seeded at constant 0.
	carry, err := nw.AddConst("zero", false)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		andI := nw.MustGate(fmt.Sprintf("bit%d.and", i), logic.And, a[i], b[i])
		orI := nw.MustGate(fmt.Sprintf("bit%d.or", i), logic.Or, a[i], b[i])
		xorI := nw.MustGate(fmt.Sprintf("bit%d.xor", i), logic.Xor, a[i], b[i])
		sumI := nw.MustGate(fmt.Sprintf("bit%d.sum", i), logic.Xor, xorI, carry)
		cI := nw.MustGate(fmt.Sprintf("bit%d.cnd", i), logic.And, xorI, carry)
		carry = nw.MustGate(fmt.Sprintf("bit%d.cy", i), logic.Or, andI, cI)
		t0 := nw.MustGate(fmt.Sprintf("bit%d.m0", i), logic.And, selAnd, andI)
		t1 := nw.MustGate(fmt.Sprintf("bit%d.m1", i), logic.And, selOr, orI)
		t2 := nw.MustGate(fmt.Sprintf("bit%d.m2", i), logic.And, selXor, xorI)
		t3 := nw.MustGate(fmt.Sprintf("bit%d.m3", i), logic.And, selAdd, sumI)
		y := nw.MustGate(fmt.Sprintf("bit%d.f", i), logic.Or, t0, t1, t2, t3)
		if err := nw.MarkOutput(y); err != nil {
			return nil, err
		}
	}
	cout := nw.MustGate("cout", logic.And, selAdd, carry)
	if err := nw.MarkOutput(cout); err != nil {
		return nil, err
	}
	return nw, nil
}

// MuxTree builds a 2^k:1 multiplexer with k select lines: inputs
// d0..d{2^k-1} and s0..s{k-1}.
func MuxTree(k int) (*logic.Network, error) {
	if k < 1 || k > 8 {
		return nil, fmt.Errorf("circuits: MuxTree selects %d", k)
	}
	nw := logic.New(fmt.Sprintf("mux%d", 1<<k))
	d := inputBus(nw, "d", 1<<k)
	s := inputBus(nw, "s", k)
	layer := d
	for lvl := 0; lvl < k; lvl++ {
		ns := nw.MustGate(fmt.Sprintf("lvl%d.ns", lvl), logic.Not, s[lvl])
		var next []logic.NodeID
		for i := 0; i+1 < len(layer); i += 2 {
			t0 := nw.MustGate(fmt.Sprintf("lvl%d.a%d", lvl, i), logic.And, ns, layer[i])
			t1 := nw.MustGate(fmt.Sprintf("lvl%d.b%d", lvl, i), logic.And, s[lvl], layer[i+1])
			next = append(next, nw.MustGate(fmt.Sprintf("lvl%d.o%d", lvl, i), logic.Or, t0, t1))
		}
		layer = next
	}
	if err := nw.MarkOutput(layer[0]); err != nil {
		return nil, err
	}
	return nw, nil
}

// Generator builds one named benchmark circuit. Every call returns a
// fresh, independent network.
type Generator func() (*logic.Network, error)

// generators is the shared registry of named benchmark circuits. The
// names are part of the external interface: lpflow -circuit, powerest
// -circuit and the lpserverd "circuit" request field all resolve here, so
// a rename is a breaking API change.
var generators = map[string]Generator{
	"radd8":  func() (*logic.Network, error) { return RippleAdder(8) },
	"radd16": func() (*logic.Network, error) { return RippleAdder(16) },
	"cla8":   func() (*logic.Network, error) { return CLAAdder(8) },
	"mult4":  func() (*logic.Network, error) { return ArrayMultiplier(4) },
	"mult5":  func() (*logic.Network, error) { return ArrayMultiplier(5) },
	"mult6":  func() (*logic.Network, error) { return ArrayMultiplier(6) },
	"cmp8":   func() (*logic.Network, error) { return Comparator(8) },
	"cmp16":  func() (*logic.Network, error) { return Comparator(16) },
	"alu4":   func() (*logic.Network, error) { return ALU(4) },
	"par16":  func() (*logic.Network, error) { return ParityTree(16) },
	"dec5":   func() (*logic.Network, error) { return Decoder(5) },
	"mux16":  func() (*logic.Network, error) { return MuxTree(4) },
}

// Generators returns a copy of the named-circuit registry, so callers can
// iterate or extend their view without mutating the shared table.
func Generators() map[string]Generator {
	out := make(map[string]Generator, len(generators))
	for n, g := range generators {
		out[n] = g
	}
	return out
}

// GeneratorNames lists the registry names, sorted.
func GeneratorNames() []string {
	names := make([]string, 0, len(generators))
	for n := range generators {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Named builds the circuit registered under name, or an error naming the
// valid choices.
func Named(name string) (*logic.Network, error) {
	g, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("circuits: unknown circuit %q (choose from %s)",
			name, strings.Join(GeneratorNames(), " "))
	}
	return g()
}
