package circuits

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/sim"
)

func TestBLIFCorpusLoads(t *testing.T) {
	corpus, err := BLIFCorpus()
	if err != nil {
		t.Fatal(err)
	}
	for name, nw := range corpus {
		if err := nw.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if len(corpus) < 5 {
		t.Errorf("corpus has only %d circuits", len(corpus))
	}
}

func TestC17Function(t *testing.T) {
	corpus, err := BLIFCorpus()
	if err != nil {
		t.Fatal(err)
	}
	c17 := corpus["c17"]
	// Reference: the standard 6-NAND netlist.
	for m := 0; m < 32; m++ {
		n1 := m&1 != 0
		n2 := m&2 != 0
		n3 := m&4 != 0
		n6 := m&8 != 0
		n7 := m&16 != 0
		g10 := !(n1 && n3)
		g11 := !(n3 && n6)
		g16 := !(n2 && g11)
		g19 := !(g11 && n7)
		w22 := !(g10 && g16)
		w23 := !(g16 && g19)
		out, err := c17.EvalComb([]bool{n1, n2, n3, n6, n7})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != w22 || out[1] != w23 {
			t.Fatalf("minterm %d: got %v/%v want %v/%v", m, out[0], out[1], w22, w23)
		}
	}
}

func TestMaj3AndFullAdder(t *testing.T) {
	corpus, err := BLIFCorpus()
	if err != nil {
		t.Fatal(err)
	}
	maj := corpus["maj3"]
	fa := corpus["fadd"]
	for m := 0; m < 8; m++ {
		a, b, c := m&1 != 0, m&2 != 0, m&4 != 0
		ones := 0
		for _, v := range []bool{a, b, c} {
			if v {
				ones++
			}
		}
		mo, err := maj.EvalComb([]bool{a, b, c})
		if err != nil {
			t.Fatal(err)
		}
		if mo[0] != (ones >= 2) {
			t.Errorf("maj3(%v,%v,%v) = %v", a, b, c, mo[0])
		}
		fo, err := fa.EvalComb([]bool{a, b, c})
		if err != nil {
			t.Fatal(err)
		}
		if fo[0] != (ones%2 == 1) || fo[1] != (ones >= 2) {
			t.Errorf("fadd(%v,%v,%v) = %v,%v", a, b, c, fo[0], fo[1])
		}
	}
}

func TestCmp2Function(t *testing.T) {
	corpus, err := BLIFCorpus()
	if err != nil {
		t.Fatal(err)
	}
	cmp := corpus["cmp2"]
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			in := []bool{a&2 != 0, a&1 != 0, b&2 != 0, b&1 != 0} // a1 a0 b1 b0
			out, err := cmp.EvalComb(in)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != (a > b) {
				t.Errorf("cmp2(%d,%d) = %v", a, b, out[0])
			}
		}
	}
}

func TestCnt2Counts(t *testing.T) {
	corpus, err := BLIFCorpus()
	if err != nil {
		t.Fatal(err)
	}
	cnt := corpus["cnt2"]
	st := logic.NewState(cnt)
	val := 0
	for cyc := 0; cyc < 20; cyc++ {
		en := cyc%3 != 0
		out, err := st.Step([]bool{en})
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		if out[1] { // q0
			got |= 1
		}
		if out[0] { // q1
			got |= 2
		}
		if got != val {
			t.Fatalf("cycle %d: count=%d want %d", cyc, got, val)
		}
		if en {
			val = (val + 1) % 4
		}
	}
}

func TestCorpusThroughSimulator(t *testing.T) {
	// Every corpus circuit must be simulable with glitch accounting.
	corpus, err := BLIFCorpus()
	if err != nil {
		t.Fatal(err)
	}
	for name, nw := range corpus {
		s, err := sim.New(nw, sim.UnitDelay)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vecs := make([][]bool, 50)
		for i := range vecs {
			v := make([]bool, len(nw.PIs()))
			for j := range v {
				v[j] = (i+j)%2 == 0
			}
			vecs[i] = v
		}
		if _, err := s.Run(vecs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
