package circuits

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// BLIFCorpus returns a set of small classic benchmark circuits expressed
// in the BLIF subset — the textual form the MCNC benchmarks of the
// surveyed papers were distributed in. They exercise the BLIF reader and
// provide irregular (non-generated) structures for the optimization
// passes.
func BLIFCorpus() (map[string]*logic.Network, error) {
	out := make(map[string]*logic.Network, len(blifSources))
	for name, src := range blifSources {
		nw, err := logic.ReadBLIF(strings.NewReader(src))
		if err != nil {
			return nil, fmt.Errorf("circuits: corpus %s: %w", name, err)
		}
		out[name] = nw
	}
	return out, nil
}

var blifSources = map[string]string{
	// ISCAS-85 C17: the canonical 6-NAND benchmark.
	"c17": `
.model c17
.inputs n1 n2 n3 n6 n7
.outputs n22 n23
.names n1 n3 n10
11 0
.names n3 n6 n11
11 0
.names n2 n11 n16
11 0
.names n11 n7 n19
11 0
.names n10 n16 n22
11 0
.names n16 n19 n23
11 0
.end
`,
	// Majority-of-three voter.
	"maj3": `
.model maj3
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
`,
	// Full adder in two covers.
	"fadd": `
.model fadd
.inputs a b cin
.outputs s cout
.names a b cin s
001 1
010 1
100 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`,
	// 2-bit magnitude comparator (a > b).
	"cmp2": `
.model cmp2
.inputs a1 a0 b1 b0
.outputs gt
# a>b: a1>b1, or a1==b1 and a0>b0
.names a1 a0 b1 b0 gt
1-0- 1
1110 1
0100 1
.end
`,
	// Decade counter fragment: 2-bit counter with enable (sequential).
	"cnt2": `
.model cnt2
.inputs en
.outputs q1 q0
.latch d0 q0 0
.latch d1 q1 0
.names en q0 d0
10 1
01 1
.names en q0 q1 d1
110 1
0-1 1
-01 1
.end
`,
}
