package power

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/logic"
	"repro/internal/obsv"
	"repro/internal/obsv/trace"
)

// ExactOptions configures budgeted exact estimation and its Monte Carlo
// fallback. The zero value means: no BDD budget, 2048 fallback vectors,
// seed 1.
type ExactOptions struct {
	// Budget bounds the BDD construction; when it trips (or the context
	// is cancelled) EstimateExactCtx degrades to packed Monte Carlo
	// instead of failing.
	Budget bdd.Budget
	// MCVectors is the number of Monte Carlo vectors used by the fallback
	// path (default 2048).
	MCVectors int
	// MCSeed seeds the fallback vector stream (default 1), so degraded
	// reports are reproducible.
	MCSeed int64
}

func (o ExactOptions) vectors() int {
	if o.MCVectors <= 0 {
		return 2048
	}
	return o.MCVectors
}

func (o ExactOptions) seed() int64 {
	if o.MCSeed == 0 {
		return 1
	}
	return o.MCSeed
}

// ExactProbabilitiesCtx is ExactProbabilities under a context and a BDD
// resource budget. On budget exhaustion or cancellation it returns a
// *bdd.BudgetError (matching bdd.ErrBudgetExceeded); with a zero budget
// and a background context it computes exactly what ExactProbabilities
// does.
//
// When the fixed declaration order blows the budget, it retries once
// with dynamic sifting reordering (the exact -> reorder -> retry rung of
// the degradation ladder) before the caller falls back to Monte Carlo;
// successful retries increment the power.exact.reordered counter. A
// cancelled context is never retried — the caller asked to stop.
func ExactProbabilitiesCtx(ctx context.Context, nw *logic.Network, inputProb Probabilities, b bdd.Budget) (Probabilities, error) {
	nb, err := bdd.FromNetworkCtx(ctx, nw, b)
	if err != nil {
		if !errors.Is(err, bdd.ErrBudgetExceeded) || ctx.Err() != nil {
			return nil, err
		}
		nb, err = bdd.FromNetworkOpts(ctx, nw, bdd.BuildOptions{
			Budget:  b,
			Reorder: bdd.ReorderPolicy{Enable: true},
		})
		if err != nil {
			return nil, err
		}
		obsv.Default().Counter("power.exact.reordered").Inc()
	}
	pv := make([]float64, nb.M.NumVars())
	for i, src := range nb.Vars {
		p, ok := inputProb[src]
		if !ok {
			p = 0.5
		}
		pv[i] = p
	}
	out := make(Probabilities, len(nb.Fn))
	for id, f := range nb.Fn {
		out[id] = nb.M.Probability(f, pv)
	}
	obsv.Default().Counter("power.exact.nodes").Add(int64(len(nb.Fn)))
	return out, nil
}

// EstimateExactCtx produces an Eqn. 1 report from exact (BDD) zero-delay
// activity, under a context deadline and a BDD resource budget. When the
// exact computation exceeds the budget — the exponential-size blowup risk
// inherent to BDDs — it first retries with dynamic variable reordering
// (via ExactProbabilitiesCtx); only if the sifted order still cannot fit
// the budget does it fail over. Even then it does not fail: it degrades to the
// bit-parallel packed Monte Carlo estimator over opt.MCVectors vectors
// drawn with each input's declared 1-probability, marks the report with
// Degraded=true and the budget error as DegradeReason, and increments the
// power.exact.degraded counter. Reports whose budget was never hit are
// bit-identical to EstimateExact.
//
// Cancellation of ctx itself (an expired deadline or an explicit cancel)
// is not degraded: it aborts with the context's error, because the caller
// asked the whole computation to stop. Use Budget to bound work while
// still getting a (degraded) result. Non-budget errors (malformed
// networks) are returned as errors too.
func EstimateExactCtx(ctx context.Context, nw *logic.Network, p Params, cm CapModel, inputProb Probabilities, opt ExactOptions) (Report, error) {
	ctx, sp := trace.Start(ctx, "power.exact")
	defer sp.End()
	ps, err := ExactProbabilitiesCtx(ctx, nw, inputProb, opt.Budget)
	if err == nil {
		sp.SetAttr("degraded", false)
		return Evaluate(nw, p, cm, ps.Activity), nil
	}
	if !errors.Is(err, bdd.ErrBudgetExceeded) {
		return Report{}, err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		// The context itself was cancelled or expired: the caller wants
		// out, so do not burn more time on the fallback.
		return Report{}, fmt.Errorf("power: exact estimation aborted: %w", ctxErr)
	}
	// Budget exhausted: fall back to Monte Carlo, the survey's own answer
	// to intractable exact analysis.
	obsv.Default().Counter("power.exact.degraded").Inc()
	sp.SetAttr("degraded", true)
	sp.SetAttr("degrade_reason", err.Error())
	mcCtx, mcSpan := trace.Start(ctx, "power.mc.fallback")
	if mcSpan != nil {
		mcSpan.SetAttr("vectors", opt.vectors())
		defer mcSpan.End()
	}
	rep, mcErr := monteCarloEstimate(mcCtx, nw, p, cm, inputProb, opt)
	if mcErr != nil {
		return Report{}, fmt.Errorf("power: exact estimation exceeded budget (%v) and Monte Carlo fallback failed: %w", err, mcErr)
	}
	rep.Degraded = true
	rep.DegradeReason = err.Error()
	return rep, nil
}

// monteCarloEstimate measures zero-delay activity over a reproducible
// biased random vector stream: the packed 64-lane engine for combinational
// networks, scalar cycle simulation for sequential ones.
func monteCarloEstimate(ctx context.Context, nw *logic.Network, p Params, cm CapModel, inputProb Probabilities, opt ExactOptions) (Report, error) {
	vecs := biasedVectors(nw, inputProb, opt.vectors(), opt.seed())
	if len(nw.FFs()) == 0 {
		rep, _, err := EstimateZeroDelayPacked(nw, p, cm, vecs)
		return rep, err
	}
	act, err := sequentialZeroDelayActivity(ctx, nw, vecs)
	if err != nil {
		return Report{}, err
	}
	piAct := piActivity(nw, vecs)
	rep := Evaluate(nw, p, cm, func(id logic.NodeID) float64 {
		if a, ok := piAct[id]; ok {
			return a
		}
		return act[id]
	})
	return rep, nil
}

// biasedVectors draws n vectors where PI i is 1 with its declared
// probability (0.5 when absent), deterministically from seed.
func biasedVectors(nw *logic.Network, inputProb Probabilities, n int, seed int64) [][]bool {
	pis := nw.PIs()
	probs := make([]float64, len(pis))
	for i, pi := range pis {
		if p, ok := inputProb[pi]; ok {
			probs[i] = p
		} else {
			probs[i] = 0.5
		}
	}
	r := rand.New(rand.NewSource(ShardSeed(seed, 0)))
	vecs := make([][]bool, n)
	for c := range vecs {
		v := make([]bool, len(pis))
		for i := range v {
			v[i] = r.Float64() < probs[i]
		}
		vecs[c] = v
	}
	return vecs
}

// sequentialZeroDelayActivity steps a sequential network through the
// vector stream under the zero-delay model and returns per-node toggle
// rates. The baseline is the settled reset state, matching the packed
// engine's convention for combinational networks. The context is polled
// every 64 cycles.
func sequentialZeroDelayActivity(ctx context.Context, nw *logic.Network, vectors [][]bool) (map[logic.NodeID]float64, error) {
	st := logic.NewState(nw)
	if err := st.Settle(); err != nil {
		return nil, err
	}
	live := nw.Live()
	prev := make(map[logic.NodeID]bool, len(live))
	for _, id := range live {
		prev[id] = st.Value(id)
	}
	toggles := make(map[logic.NodeID]int64, len(live))
	for c, in := range vectors {
		if c&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if _, err := st.Step(in); err != nil {
			return nil, err
		}
		for _, id := range live {
			v := st.Value(id)
			if v != prev[id] {
				toggles[id]++
				prev[id] = v
			}
		}
	}
	act := make(map[logic.NodeID]float64, len(live))
	if len(vectors) == 0 {
		return act, nil
	}
	for _, id := range live {
		act[id] = float64(toggles[id]) / float64(len(vectors))
	}
	return act, nil
}
