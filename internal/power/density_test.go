package power

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestTransitionDensityXOR(t *testing.T) {
	// For y = a XOR b, P(∂y/∂a) = P(∂y/∂b) = 1, so D(y) = D(a)+D(b).
	nw := logic.New("x")
	a := nw.MustInput("a")
	b := nw.MustInput("b")
	y := nw.MustGate("y", logic.Xor, a, b)
	if err := nw.MarkOutput(y); err != nil {
		t.Fatal(err)
	}
	dens, err := TransitionDensities(nw, map[logic.NodeID]float64{a: 0.3, b: 0.2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dens[y]-0.5) > 1e-12 {
		t.Errorf("D(xor) = %v, want 0.5", dens[y])
	}
}

func TestTransitionDensityAND(t *testing.T) {
	// y = a AND b: P(∂y/∂a) = P(b) = 0.5; D(y) = 0.5 D(a) + 0.5 D(b).
	nw := logic.New("a")
	a := nw.MustInput("a")
	b := nw.MustInput("b")
	y := nw.MustGate("y", logic.And, a, b)
	if err := nw.MarkOutput(y); err != nil {
		t.Fatal(err)
	}
	dens, err := TransitionDensities(nw, map[logic.NodeID]float64{a: 0.4, b: 0.8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dens[y]-0.6) > 1e-12 {
		t.Errorf("D(and) = %v, want 0.6", dens[y])
	}
	// With biased probabilities: P(b)=0.9, P(a)=0.1.
	dens, err = TransitionDensities(nw,
		map[logic.NodeID]float64{a: 0.4, b: 0.8},
		Probabilities{a: 0.1, b: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9*0.4 + 0.1*0.8
	if math.Abs(dens[y]-want) > 1e-12 {
		t.Errorf("biased D(and) = %v, want %v", dens[y], want)
	}
}

func TestDensityUpperBoundsZeroDelayOnTrees(t *testing.T) {
	// On fanout-free trees the density estimate is exact for transition
	// counts under independence and matches 2p(1-p) sources propagated;
	// it must be at least the zero-delay pair activity everywhere.
	nw, err := circuits.ParityTree(8)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	inputDens := map[logic.NodeID]float64{}
	for _, pi := range nw.PIs() {
		inputDens[pi] = 0.5
	}
	dens, err := TransitionDensities(nw, inputDens, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range nw.Gates() {
		zeroDelay := probs.Activity(id)
		if dens[id] < zeroDelay-1e-9 {
			t.Errorf("node %d: density %v below zero-delay activity %v", id, dens[id], zeroDelay)
		}
	}
}

func TestDensityTracksGlitchesOnChain(t *testing.T) {
	// On the unbalanced parity chain, simulated (glitchy) activity exceeds
	// zero-delay activity; the density estimate should land above
	// zero-delay, toward the simulation, for the deep nodes.
	nw, err := circuits.ParityChain(10)
	if err != nil {
		t.Fatal(err)
	}
	inputDens := map[logic.NodeID]float64{}
	for _, pi := range nw.PIs() {
		inputDens[pi] = 0.5
	}
	dens, err := TransitionDensities(nw, inputDens, nil)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	if _, err := s.Run(sim.RandomVectors(r, 4000, 10, 0.5)); err != nil {
		t.Fatal(err)
	}
	deep := nw.POs()[0]
	zd := probs.Activity(deep)
	measured := s.Activity(deep)
	estimated := dens[deep]
	if !(estimated > zd) {
		t.Errorf("density %v should exceed zero-delay %v at the deep node", estimated, zd)
	}
	// Density propagation ignores simultaneous-edge cancellation, so it is
	// the standard conservative estimate: zero-delay <= measured <=
	// density at the glitchy deep node.
	if !(zd < measured && measured < estimated+1e-9) {
		t.Errorf("expected zero-delay %v <= measured %v <= density %v", zd, measured, estimated)
	}
	// For a parity chain the density estimate equals the summed input
	// densities (every Boolean difference is 1).
	if math.Abs(estimated-5.0) > 1e-9 {
		t.Errorf("parity-chain density = %v, want 5.0", estimated)
	}
}

func TestEstimateDensityReport(t *testing.T) {
	nw, err := circuits.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	inputDens := map[logic.NodeID]float64{}
	for _, pi := range nw.PIs() {
		inputDens[pi] = 0.5
	}
	exact, err := EstimateExact(nw, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	denseRep, err := EstimateDensity(nw, DefaultParams(), nil, inputDens, nil)
	if err != nil {
		t.Fatal(err)
	}
	if denseRep.Total() < exact.Total()-1e-9 {
		t.Errorf("density estimate %v should not be below zero-delay %v", denseRep.Total(), exact.Total())
	}
}
