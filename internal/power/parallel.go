package power

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/logic"
)

// ShardSeed derives the PRNG seed of shard i from a caller seed with a
// splitmix64 step, so shard streams are decorrelated but fully determined
// by (seed, i). Exported because cmd-level tools that fan Monte Carlo
// work out themselves must derive shard seeds the same way to reproduce
// reports.
func ShardSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SequentialProbabilitiesSharded is the parallel Monte Carlo form of
// SequentialProbabilities: the warm-up budget is split into shards
// independent simulation streams, each with a PRNG seeded by
// ShardSeed(seed, i), and the flip-flop one-counts are merged in shard
// order. The result depends only on (nw, seed, cycles, shards, piProb) —
// never on GOMAXPROCS or goroutine scheduling — so a report produced with
// one worker is byte-identical to one produced with many. Shard count is
// part of the estimator's identity: different shard counts are different
// (equally valid) estimates of the same stationary probabilities.
//
// shards <= 1 reproduces SequentialProbabilities(nw,
// rand.New(rand.NewSource(ShardSeed(seed, 0))), cycles, piProb) exactly.
func SequentialProbabilitiesSharded(nw *logic.Network, seed int64, cycles, shards int, piProb float64) (Probabilities, error) {
	if shards < 1 {
		shards = 1
	}
	if shards > cycles {
		shards = cycles
	}
	if shards <= 1 {
		return SequentialProbabilities(nw, rand.New(rand.NewSource(ShardSeed(seed, 0))), cycles, piProb)
	}

	type shardResult struct {
		ones   map[logic.NodeID]int
		cycles int
		err    error
	}
	results := make([]shardResult, shards)
	base, rem := cycles/shards, cycles%shards

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < shards; i++ {
		n := base
		if i < rem {
			n++
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := rand.New(rand.NewSource(ShardSeed(seed, i)))
			st := logic.NewState(nw)
			ones := make(map[logic.NodeID]int)
			in := make([]bool, len(nw.PIs()))
			for c := 0; c < n; c++ {
				for j := range in {
					in[j] = r.Float64() < piProb
				}
				if _, err := st.Step(in); err != nil {
					results[i] = shardResult{err: err}
					return
				}
				for _, f := range nw.FFs() {
					if st.Value(f) {
						ones[f]++
					}
				}
			}
			results[i] = shardResult{ones: ones, cycles: n}
		}(i, n)
	}
	wg.Wait()

	total := 0
	ones := make(map[logic.NodeID]int)
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		total += res.cycles
		for f, n := range res.ones {
			ones[f] += n
		}
	}
	out := make(Probabilities)
	for _, pi := range nw.PIs() {
		out[pi] = piProb
	}
	for _, f := range nw.FFs() {
		if total > 0 {
			out[f] = float64(ones[f]) / float64(total)
		} else {
			out[f] = 0.5
		}
	}
	return out, nil
}
