package power

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/sim"
)

// incrCorpus builds the circuit generators plus seeded random DAGs the
// incremental-vs-full property is checked over.
func incrCorpus(t *testing.T) map[string]*logic.Network {
	t.Helper()
	out := make(map[string]*logic.Network)
	add := func(name string, nw *logic.Network, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = nw
	}
	nw, err := circuits.RippleAdder(4)
	add("radd4", nw, err)
	nw, err = circuits.CLAAdder(4)
	add("cla4", nw, err)
	nw, err = circuits.ArrayMultiplier(4)
	add("mult4", nw, err)
	nw, err = circuits.Comparator(6)
	add("cmp6", nw, err)
	nw, err = circuits.ParityTree(8)
	add("par8", nw, err)
	nw, err = circuits.Decoder(3)
	add("dec3", nw, err)
	nw, err = circuits.ALU(3)
	add("alu3", nw, err)
	nw, err = circuits.MuxTree(3)
	add("mux8", nw, err)
	for seed := int64(1); seed <= 4; seed++ {
		add(fmt.Sprintf("dag%d", seed), randomDAG(seed), nil)
	}
	return out
}

// randomDAG builds a seeded random combinational network covering every
// gate type.
func randomDAG(seed int64) *logic.Network {
	r := rand.New(rand.NewSource(seed))
	nw := logic.New(fmt.Sprintf("dag%d", seed))
	var pool []logic.NodeID
	for i := 0; i < 3+r.Intn(4); i++ {
		pool = append(pool, nw.MustInput(fmt.Sprintf("i%d", i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for i := 0; i < 25+r.Intn(25); i++ {
		t := types[r.Intn(len(types))]
		k := 2 + r.Intn(3)
		if t == logic.Not || t == logic.Buf {
			k = 1
		}
		fanin := make([]logic.NodeID, k)
		for j := range fanin {
			fanin[j] = pool[r.Intn(len(pool))]
		}
		pool = append(pool, nw.MustGate(fmt.Sprintf("g%d", i), t, fanin...))
	}
	for i := 0; i < 3; i++ {
		if err := nw.MarkOutput(pool[len(pool)-1-i]); err != nil {
			panic(err)
		}
	}
	return nw
}

// mutate applies one random structural rewrite through the mutation API.
// The moves are chosen to exercise every dirty-tracking path — gate
// insertion (double negation), rewiring, output re-marking, deletion —
// without ever creating a combinational cycle (new fanins are primary
// inputs or fanins of the rewritten gate itself).
func mutate(t *testing.T, nw *logic.Network, r *rand.Rand, tag int) {
	t.Helper()
	gates := nw.Gates()
	if len(gates) == 0 {
		t.Fatal("network lost all gates")
	}
	id := gates[r.Intn(len(gates))]
	n := nw.Node(id)
	switch r.Intn(4) {
	case 0:
		// Function-preserving double negation of an And/Or gate.
		inv := logic.GateType(-1)
		switch n.Type {
		case logic.And:
			inv = logic.Nand
		case logic.Or:
			inv = logic.Nor
		}
		if inv < 0 || len(n.Fanin) < 2 {
			return
		}
		g, err := nw.AddGate(fmt.Sprintf("m%d_inv", tag), inv, n.Fanin...)
		if err != nil {
			t.Fatal(err)
		}
		nn, err := nw.AddGate(fmt.Sprintf("m%d_not", tag), logic.Not, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.ReplaceNode(id, nn); err != nil {
			t.Fatal(err)
		}
	case 1:
		// Rewire one fanin to a random primary input (acyclic by
		// construction; function-changing is fine — the property under
		// test is estimator equality, not equivalence).
		pis := nw.PIs()
		if err := nw.ReplaceFanin(id, n.Fanin[r.Intn(len(n.Fanin))], pis[r.Intn(len(pis))]); err != nil {
			t.Fatal(err)
		}
	case 2:
		// Toggle output role: mark a random gate as a primary output.
		if !nw.IsPO(id) {
			if err := nw.MarkOutput(id); err != nil {
				t.Fatal(err)
			}
		}
	case 3:
		// Delete a dangling gate if one exists (sweep-style shrink).
		for _, g := range gates {
			if len(nw.Node(g).Fanout()) == 0 && !nw.IsPO(g) {
				if err := nw.DeleteNode(g); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
	}
}

// fullReference recomputes everything from scratch on the current network
// with the one-shot estimators the incremental path claims bit-identity
// with.
func fullReference(t *testing.T, nw *logic.Network, p Params, cm CapModel, vecs [][]bool) (Probabilities, Report, Report, sim.Totals) {
	t.Helper()
	probs, err := PropagatedProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	propRep := Evaluate(nw, p, cm, probs.Activity)
	packRep, tot, err := EstimateZeroDelayPacked(nw, p, cm, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return probs, propRep, packRep, tot
}

// TestIncrementalEstimatorMatchesFull is the bit-identity property test:
// random rewrite sequences over generator circuits and random DAGs, with
// every intermediate incremental measurement compared field-for-field
// (and probability-for-probability, exact float equality) against a
// from-scratch recomputation.
func TestIncrementalEstimatorMatchesFull(t *testing.T) {
	p := DefaultParams()
	cm := BufferWeightedCap(0.25)
	for name, nw := range incrCorpus(t) {
		r := rand.New(rand.NewSource(int64(len(name)) * 977))
		vecs := sim.RandomVectors(r, 200, len(nw.PIs()), 0.5)
		est := NewIncrementalEstimator(nw, p, cm, nil, vecs)

		first, err := est.Measure()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if first.Incremental {
			t.Fatalf("%s: first measurement claims to be incremental", name)
		}

		for step := 0; step < 12; step++ {
			mutate(t, nw, r, step)
			got, err := est.Measure()
			if err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
			probs, propRep, packRep, tot := fullReference(t, nw, p, cm, vecs)
			reportsEqual(t, fmt.Sprintf("%s step %d propagated", name, step), got.Propagated, propRep)
			reportsEqual(t, fmt.Sprintf("%s step %d packed", name, step), got.Packed, packRep)
			if got.Totals != tot {
				t.Fatalf("%s step %d: totals %+v, full %+v", name, step, got.Totals, tot)
			}
			for _, id := range nw.Live() {
				if est.probs[id] != probs[id] {
					t.Fatalf("%s step %d node %d: probability %v, full %v",
						name, step, id, est.probs[id], probs[id])
				}
			}
			if got.Incremental && got.ConeNodes+got.CleanNodes != len(mustOrder(t, nw)) {
				t.Fatalf("%s step %d: cone %d + clean %d != live comb %d",
					name, step, got.ConeNodes, got.CleanNodes, len(mustOrder(t, nw)))
			}
		}
	}
}

// reportsEqual demands exact (==, not approximate) equality of two power
// reports, including every per-node row — the "bit-identical" bar.
func reportsEqual(t *testing.T, label string, got, want Report) {
	t.Helper()
	if got.Switching != want.Switching || got.ShortCkt != want.ShortCkt || got.Leakage != want.Leakage {
		t.Fatalf("%s: totals {%v %v %v}, full {%v %v %v}", label,
			got.Switching, got.ShortCkt, got.Leakage,
			want.Switching, want.ShortCkt, want.Leakage)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d node rows, full %d", label, len(got.Nodes), len(want.Nodes))
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("%s: node row %d = %+v, full %+v", label, i, got.Nodes[i], want.Nodes[i])
		}
	}
}

func mustOrder(t *testing.T, nw *logic.Network) []logic.NodeID {
	t.Helper()
	order, err := nw.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	return order
}

// TestIncrementalEstimatorFallbacks pins the full-recompute escapes: the
// explicit Invalidate hatch and a dirtied source.
func TestIncrementalEstimatorFallbacks(t *testing.T) {
	nw, err := circuits.CLAAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	vecs := sim.RandomVectors(r, 100, len(nw.PIs()), 0.5)
	p := DefaultParams()
	cm := BufferWeightedCap(0.25)
	est := NewIncrementalEstimator(nw, p, cm, nil, vecs)
	if _, err := est.Measure(); err != nil {
		t.Fatal(err)
	}

	mutate(t, nw, r, 0)
	res, err := est.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental {
		t.Fatal("clean local rewrite did not take the incremental path")
	}

	// The escape hatch forces a full recompute even with nothing dirty.
	est.Invalidate()
	res, err = est.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Fatal("Invalidate did not force a full recompute")
	}

	// Adding a primary input dirties a source: must fall back.
	pi, err := nw.AddInput("extra")
	if err != nil {
		t.Fatal(err)
	}
	g := nw.Gates()[0]
	if err := nw.ReplaceFanin(g, nw.Node(g).Fanin[0], pi); err != nil {
		t.Fatal(err)
	}
	vecs2 := sim.RandomVectors(r, 100, len(nw.PIs()), 0.5)
	est2 := NewIncrementalEstimator(nw, p, cm, nil, vecs2)
	if _, err := est2.Measure(); err != nil {
		t.Fatal(err)
	}
	// est (bound to the old vector width) must notice the source change
	// rather than splice garbage; its fallback then fails loudly on the
	// width mismatch instead of silently diverging.
	if _, err := est.Measure(); err == nil {
		t.Fatal("estimator spliced through a primary-input change")
	}

	// MaxConeFrac: a tiny bound forces full recomputes for any rewrite.
	est3 := NewIncrementalEstimator(nw, p, cm, nil, vecs2)
	est3.MaxConeFrac = 1e-9
	if _, err := est3.Measure(); err != nil {
		t.Fatal(err)
	}
	g2 := nw.Gates()[1]
	if err := nw.ReplaceFanin(g2, nw.Node(g2).Fanin[0], pi); err != nil {
		t.Fatal(err)
	}
	res, err = est3.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Fatal("MaxConeFrac bound did not force a full recompute")
	}
}
