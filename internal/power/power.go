// Package power implements the survey's central quantity, Eqn. 1:
//
//	P = 1/2 C Vdd^2 f N  +  Qsc Vdd f N  +  Ileak Vdd
//
// for gate-level networks. It provides three activity sources — exact
// probabilistic (BDD signal probabilities), approximate probabilistic
// (independence-assumption propagation), and measured (event-driven
// simulation via internal/sim) — over a simple capacitance model, and
// produces per-node and aggregate power reports used by every optimization
// experiment.
//
// Units: capacitance is measured in unit gate-input loads, voltage in
// volts, frequency in cycles per second. Reported power is in C·Vdd²·f
// units; only ratios between designs are meaningful, which is all the
// survey's claims require.
package power

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Params holds the technology/environment parameters of Eqn. 1.
type Params struct {
	Vdd  float64 // supply voltage
	Freq float64 // clock frequency

	// QscFraction scales short-circuit charge per transition as a fraction
	// of the switched charge; for well-designed gates with controlled edge
	// rates this is small (the survey: switching power is >90% of total).
	QscFraction float64

	// LeakPerGate is the leakage current drawn by each gate, in units such
	// that LeakPerGate*Vdd is power in the same units as switching power.
	LeakPerGate float64
}

// DefaultParams returns 1995-era CMOS parameters: 5 V supply, unit
// frequency, 4% short-circuit fraction and a small leakage term. With
// these, switching activity power is a little over 90% of total on typical
// circuits, matching the survey's claim.
func DefaultParams() Params {
	return Params{Vdd: 5.0, Freq: 1.0, QscFraction: 0.04, LeakPerGate: 0.002}
}

// CapModel assigns an output load capacitance to each node.
type CapModel func(nw *logic.Network, n *logic.Node) float64

// UnitLoadCap is the default capacitance model: every gate input presents
// one unit of capacitance, every driven net adds one unit of wire and
// drain parasitics, and primary outputs drive one unit of external load.
func UnitLoadCap(nw *logic.Network, n *logic.Node) float64 {
	c := 1.0 // self (drain + local wire)
	c += float64(faninConnections(nw, n))
	if nw.IsPO(n.ID) {
		c += 1.0
	}
	return c
}

// faninConnections counts how many gate input pins node n drives.
func faninConnections(nw *logic.Network, n *logic.Node) int {
	total := 0
	for _, c := range n.Fanout() {
		cn := nw.Node(c)
		if cn == nil {
			continue
		}
		for _, f := range cn.Fanin {
			if f == n.ID {
				total++
			}
		}
	}
	return total
}

// BufferWeightedCap returns a capacitance model like UnitLoadCap except
// that Buf nodes — the minimum-size delay elements inserted by path
// balancing — present bufWeight units of capacitance instead of 1, both as
// the buffer's own output load and as the input-pin load it presents to
// its driver. The survey notes that balancing buffers "increase
// capacitance which may offset the reduction in switching activity";
// whether balancing wins depends on exactly this weight, so it is an
// explicit ablation parameter (1.0 reproduces UnitLoadCap).
func BufferWeightedCap(bufWeight float64) CapModel {
	return func(nw *logic.Network, n *logic.Node) float64 {
		c := 1.0
		if n.Type == logic.Buf {
			c = bufWeight
		}
		for _, cid := range n.Fanout() {
			cn := nw.Node(cid)
			if cn == nil {
				continue
			}
			pin := 1.0
			if cn.Type == logic.Buf {
				pin = bufWeight
			}
			for _, f := range cn.Fanin {
				if f == n.ID {
					c += pin
				}
			}
		}
		if nw.IsPO(n.ID) {
			c += 1.0
		}
		return c
	}
}

// WeightedGateCap is a capacitance model that additionally charges each
// gate for its own complexity: a k-input gate's output carries k units of
// internal (source/drain) parasitics. Used by the sizing and mapping
// passes, where gate size matters.
func WeightedGateCap(nw *logic.Network, n *logic.Node) float64 {
	c := UnitLoadCap(nw, n)
	if n.Type.IsGate() {
		c += float64(len(n.Fanin)) * 0.5
	}
	return c
}

// NodePower is the power breakdown at one node.
type NodePower struct {
	Node      logic.NodeID
	Name      string
	Cap       float64 // load capacitance
	Activity  float64 // transitions per cycle (N in Eqn. 1)
	Switching float64
	ShortCkt  float64
	Leakage   float64
}

// Total returns the node's total power.
func (np NodePower) Total() float64 { return np.Switching + np.ShortCkt + np.Leakage }

// Report aggregates Eqn. 1 over a network.
type Report struct {
	Params    Params
	Switching float64
	ShortCkt  float64
	Leakage   float64
	Nodes     []NodePower

	// Degraded is true when the exact estimator exhausted its BDD budget
	// and the report's activities come from the Monte Carlo fallback
	// instead (see EstimateExactCtx). DegradeReason carries the budget
	// error that forced the downgrade.
	Degraded      bool
	DegradeReason string
}

// Total returns total power.
func (r Report) Total() float64 { return r.Switching + r.ShortCkt + r.Leakage }

// SwitchingShare returns the fraction of total power due to switching
// activity (the survey: >90% for well-designed gates).
func (r Report) SwitchingShare() float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return r.Switching / t
}

func (r Report) String() string {
	s := fmt.Sprintf("P=%.4f (switching %.4f [%.1f%%], short-circuit %.4f, leakage %.4f)",
		r.Total(), r.Switching, 100*r.SwitchingShare(), r.ShortCkt, r.Leakage)
	if r.Degraded {
		s += " [degraded to Monte Carlo: " + r.DegradeReason + "]"
	}
	return s
}

// TopConsumers returns the k highest-power nodes, descending.
func (r Report) TopConsumers(k int) []NodePower {
	nodes := append([]NodePower(nil), r.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Total() > nodes[j].Total() })
	if k > len(nodes) {
		k = len(nodes)
	}
	return nodes[:k]
}

// Evaluate applies Eqn. 1 given a per-node activity function (transitions
// per cycle on the node's output net). Source nodes (PIs) are charged for
// the capacitance they drive too: their switching is externally supplied
// but dissipates in this circuit's wires.
func Evaluate(nw *logic.Network, p Params, cm CapModel, activity func(logic.NodeID) float64) Report {
	if cm == nil {
		cm = UnitLoadCap
	}
	rep := Report{Params: p}
	for _, id := range nw.Live() {
		n := nw.Node(id)
		c := cm(nw, n)
		a := activity(id)
		np := NodePower{Node: id, Name: n.Name, Cap: c, Activity: a}
		np.Switching = 0.5 * c * p.Vdd * p.Vdd * p.Freq * a
		np.ShortCkt = p.QscFraction * 0.5 * c * p.Vdd * p.Vdd * p.Freq * a
		if n.Type.IsGate() {
			np.Leakage = p.LeakPerGate * p.Vdd
		}
		rep.Switching += np.Switching
		rep.ShortCkt += np.ShortCkt
		rep.Leakage += np.Leakage
		rep.Nodes = append(rep.Nodes, np)
	}
	return rep
}
