package power

import (
	"repro/internal/logic"
	"repro/internal/obsv"
	"repro/internal/sim"
)

// IncrementalEstimator owns the baseline state that makes repeated
// estimation of a mutating combinational network cheap: the propagated
// probability table and the packed zero-delay lane state (sim.PackedState)
// of the last measurement. Each Measure consumes the network's dirty set,
// derives the dirty cone, and re-derives only cone members from stored
// boundary values — probabilities through the shared propagateNode kernel,
// packed lanes and transition counts through PackedState.UpdateCone. The
// results are bit-identical to recomputing from scratch with
// PropagatedProbabilities and EstimateZeroDelayPacked: clean nodes' stored
// values are exactly what a full pass would recompute (a live node outside
// the cone has only clean fanins), and cone members go through the same
// kernels in the same topological order.
//
// The estimator falls back to a transparent full recompute whenever reuse
// is unsound or unavailable: the first measurement, after Invalidate, when
// a source (primary input or flip-flop) was dirtied, when the set of
// primary inputs changed, or when the cone exceeds MaxConeFrac. Power
// evaluation (Evaluate) always runs over the full live network — only the
// per-node activity derivation is incremental.
//
// An estimator is bound to one Network instance and one vector stream; it
// is not safe for concurrent use, and the network must only be mutated
// through its mutation API between measurements (see logic.DirtyAudit for
// the check that catches bypasses).
type IncrementalEstimator struct {
	nw        *logic.Network
	params    Params
	cm        CapModel
	inputProb Probabilities
	vectors   [][]bool

	// MaxConeFrac bounds how large a dirty cone is still worth splicing:
	// when the cone exceeds this fraction of the live combinational nodes
	// the estimator recomputes from scratch instead (the full pass has
	// better constants once most of the network is dirty anyway). Zero
	// disables the bound.
	MaxConeFrac float64

	valid bool
	probs Probabilities
	st    sim.PackedState
	piAct map[logic.NodeID]float64
	pis   []logic.NodeID
}

// NewIncrementalEstimator binds an estimator to a network and a fixed
// evaluation environment. The first Measure takes the full baseline; the
// caller should ClearDirty (or TakeDirty) construction-time noise before
// mutating, though a stale dirty set only costs cone size, never
// correctness.
func NewIncrementalEstimator(nw *logic.Network, p Params, cm CapModel, inputProb Probabilities, vectors [][]bool) *IncrementalEstimator {
	return &IncrementalEstimator{nw: nw, params: p, cm: cm, inputProb: inputProb, vectors: vectors}
}

// IncrementalResult is one measurement: the propagated-probability report,
// the packed zero-delay Monte Carlo report, and how the measurement was
// obtained.
type IncrementalResult struct {
	Propagated Report
	Packed     Report
	Totals     sim.Totals
	// Incremental reports whether this measurement spliced into the
	// baseline; false means a full recompute (first call, escape hatch,
	// or one of the fallback conditions).
	Incremental bool
	// ConeNodes and CleanNodes split the live combinational node count of
	// an incremental measurement: recomputed vs reused.
	ConeNodes  int
	CleanNodes int
}

// Invalidate discards the baseline, forcing the next Measure to recompute
// from scratch — the full-recompute escape hatch.
func (e *IncrementalEstimator) Invalidate() { e.valid = false }

// Measure consumes the network's dirty set and returns the current power
// estimates, reusing the baseline where sound. Every call leaves the
// baseline synchronized with the network's current structure (or invalid,
// on error).
func (e *IncrementalEstimator) Measure() (IncrementalResult, error) {
	obs := obsv.Default()
	obs.Counter("flow.incr.measures").Add(1)
	dirty := e.nw.TakeDirty()
	var cone *logic.Cone
	full := !e.valid || len(e.nw.FFs()) > 0
	if !full {
		var err error
		cone, err = e.nw.DirtyCone(dirty)
		if err != nil {
			e.valid = false
			return IncrementalResult{}, err
		}
		order, _ := e.nw.TopoOrder()
		switch {
		case len(cone.Sources) > 0:
			full = true
		case !sameIDs(e.pis, e.nw.PIs()):
			full = true
		case e.MaxConeFrac > 0 && float64(len(cone.Members)) > e.MaxConeFrac*float64(len(order)):
			full = true
		}
	}
	if full {
		obs.Counter("flow.incr.full_recomputes").Add(1)
		return e.fullMeasure()
	}
	return e.coneMeasure(cone)
}

func (e *IncrementalEstimator) fullMeasure() (IncrementalResult, error) {
	e.valid = false
	probs, err := PropagatedProbabilities(e.nw, e.inputProb)
	if err != nil {
		return IncrementalResult{}, err
	}
	ps, err := sim.NewPacked(e.nw)
	if err != nil {
		return IncrementalResult{}, err
	}
	tot, err := ps.RunCapture(e.vectors, &e.st)
	if err != nil {
		return IncrementalResult{}, err
	}
	e.probs = probs
	e.piAct = piActivity(e.nw, e.vectors)
	e.pis = append(e.pis[:0], e.nw.PIs()...)
	e.valid = true
	res := IncrementalResult{Totals: tot}
	e.evaluate(&res)
	return res, nil
}

func (e *IncrementalEstimator) coneMeasure(cone *logic.Cone) (IncrementalResult, error) {
	for _, id := range cone.Removed {
		delete(e.probs, id)
	}
	propagated := 0
	var buf []float64
	for _, id := range cone.Members {
		p, counted, err := propagateNode(e.nw.Node(id), e.probs, &buf)
		if err != nil {
			e.valid = false
			return IncrementalResult{}, err
		}
		e.probs[id] = p
		if counted {
			propagated++
		}
	}
	if err := e.st.UpdateCone(e.nw, cone); err != nil {
		e.valid = false
		return IncrementalResult{}, err
	}
	order, _ := e.nw.TopoOrder()
	res := IncrementalResult{
		Incremental: true,
		ConeNodes:   len(cone.Members),
		CleanNodes:  len(order) - len(cone.Members),
		Totals: sim.Totals{
			Cycles:      e.st.Cycles,
			Transitions: e.st.GateTransitions,
			Useful:      e.st.GateTransitions,
		},
	}
	obs := obsv.Default()
	obs.Counter("power.prop.nodes").Add(int64(propagated))
	obs.Counter("flow.incr.cone_nodes").Add(int64(res.ConeNodes))
	obs.Counter("flow.incr.clean_nodes").Add(int64(res.CleanNodes))
	if len(order) > 0 {
		obs.Gauge("flow.incr.reuse_frac").Set(float64(res.CleanNodes) / float64(len(order)))
	}
	e.evaluate(&res)
	return res, nil
}

// evaluate fills the two reports from the (now current) baseline tables.
// Evaluate itself always runs over the full live network: capacitance
// loads depend on fanout shape, which a rewrite changes even for nodes
// whose activity it does not.
func (e *IncrementalEstimator) evaluate(res *IncrementalResult) {
	res.Propagated = Evaluate(e.nw, e.params, e.cm, e.probs.Activity)
	res.Packed = Evaluate(e.nw, e.params, e.cm, e.packedActivity)
}

// packedActivity mirrors EstimateZeroDelayPacked's activity source:
// primary inputs from the vector stream, everything else from the packed
// transition counts.
func (e *IncrementalEstimator) packedActivity(id logic.NodeID) float64 {
	if a, ok := e.piAct[id]; ok {
		return a
	}
	return e.st.Activity(id)
}

func sameIDs(a, b []logic.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
