package power

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/obsv"
)

// TestEstimateExactCtxReorderRetry pins the new rung of the degradation
// ladder: a wide comparator whose fixed declaration order blows a node
// budget (and previously fell straight to Monte Carlo) must now complete
// exactly after the reorder-retry, with Degraded=false.
func TestEstimateExactCtxReorderRetry(t *testing.T) {
	nw, err := circuits.Comparator(16)
	if err != nil {
		t.Fatal(err)
	}
	b := bdd.Budget{MaxNodes: 20000}
	// The premise: the fixed order cannot fit this budget.
	if _, err := bdd.FromNetworkCtx(context.Background(), nw, b); err == nil || !errors.Is(err, bdd.ErrBudgetExceeded) {
		t.Fatalf("fixed-order cmp16 unexpectedly fit a %d-node budget (err=%v)", b.MaxNodes, err)
	}

	reg := obsv.Enable()
	defer obsv.Disable()
	p := DefaultParams()
	rep, err := EstimateExactCtx(context.Background(), nw, p, nil, nil, ExactOptions{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("estimate still degraded after reorder-retry: %s", rep.DegradeReason)
	}
	if got := reg.Counter("power.exact.reordered").Value(); got != 1 {
		t.Fatalf("power.exact.reordered = %d, want 1", got)
	}
	if got := reg.Counter("power.exact.degraded").Value(); got != 0 {
		t.Fatalf("power.exact.degraded = %d, want 0", got)
	}
	if got := reg.Counter("bdd.reorder.runs").Value(); got == 0 {
		t.Fatal("bdd.reorder.runs not incremented by the retry build")
	}

	// The retried result is exact: it matches the unbudgeted estimator
	// up to floating-point reassociation from the permuted order.
	exact, err := EstimateExact(nw, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(rep.Total() - exact.Total()); diff > 1e-9*exact.Total() {
		t.Fatalf("reorder-retry total %v differs from exact %v", rep.Total(), exact.Total())
	}

	// And deterministic, byte for byte: a second run must agree exactly
	// (the server caches these responses).
	rep2, err := EstimateExactCtx(context.Background(), nw, p, nil, nil, ExactOptions{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Degraded || rep2.Total() != rep.Total() {
		t.Fatalf("reorder-retry not deterministic: %v vs %v", rep2.Total(), rep.Total())
	}
}

// TestExactProbabilitiesCtxReorderRetryValues checks the retried path
// returns per-node probabilities matching the unbudgeted computation.
func TestExactProbabilitiesCtxReorderRetryValues(t *testing.T) {
	nw, err := circuits.Comparator(12)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := bdd.Budget{MaxNodes: 2000}
	if _, err := bdd.FromNetworkCtx(context.Background(), nw, budget); !errors.Is(err, bdd.ErrBudgetExceeded) {
		t.Fatalf("cmp12 unexpectedly fit %d nodes (err=%v)", budget.MaxNodes, err)
	}
	retried, err := ExactProbabilitiesCtx(context.Background(), nw, nil, budget)
	if err != nil {
		t.Fatalf("reorder-retry failed: %v", err)
	}
	if len(retried) != len(plain) {
		t.Fatalf("node coverage differs: %d vs %d", len(retried), len(plain))
	}
	for id, want := range plain {
		if got := retried[id]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("node %d: probability %v vs %v", id, got, want)
		}
	}
}

// TestExactProbabilitiesCtxNoRetryOnCancel checks a cancelled context is
// not retried: cancellation aborts the ladder outright.
func TestExactProbabilitiesCtxNoRetryOnCancel(t *testing.T) {
	nw, err := circuits.Comparator(16)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ExactProbabilitiesCtx(ctx, nw, nil, bdd.Budget{MaxNodes: 20000})
	if err == nil {
		t.Fatal("cancelled context did not error")
	}
	reg := obsv.Enable()
	defer obsv.Disable()
	if got := reg.Counter("power.exact.reordered").Value(); got != 0 {
		t.Fatalf("cancelled context still took the reorder rung: %d", got)
	}
}
