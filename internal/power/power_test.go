package power

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/sim"
)

func mustMux(t *testing.T) *logic.Network {
	t.Helper()
	nw := logic.New("mux")
	s := nw.MustInput("s")
	a := nw.MustInput("a")
	b := nw.MustInput("b")
	ns := nw.MustGate("ns", logic.Not, s)
	t0 := nw.MustGate("t0", logic.And, ns, a)
	t1 := nw.MustGate("t1", logic.And, s, b)
	o := nw.MustGate("o", logic.Or, t0, t1)
	if err := nw.MarkOutput(o); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestExactProbabilitiesMux(t *testing.T) {
	nw := mustMux(t)
	ps, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"s": 0.5, "a": 0.5, "b": 0.5,
		"ns": 0.5, "t0": 0.25, "t1": 0.25, "o": 0.5,
	}
	for name, w := range want {
		got := ps[nw.ByName(name)]
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", name, got, w)
		}
	}
}

func TestExactProbabilitiesBiased(t *testing.T) {
	nw := mustMux(t)
	in := Probabilities{
		nw.ByName("s"): 0.1,
		nw.ByName("a"): 0.9,
		nw.ByName("b"): 0.2,
	}
	ps, err := ExactProbabilities(nw, in)
	if err != nil {
		t.Fatal(err)
	}
	// P(o) = (1-0.1)*0.9 + 0.1*0.2 = 0.83
	if got := ps[nw.ByName("o")]; math.Abs(got-0.83) > 1e-12 {
		t.Errorf("P(o) = %v, want 0.83", got)
	}
}

func TestPropagatedMatchesExactOnTree(t *testing.T) {
	// Without reconvergent fanout the approximation is exact.
	nw, err := circuits.ParityTree(8)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := PropagatedProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range nw.Live() {
		if math.Abs(exact[id]-prop[id]) > 1e-12 {
			t.Errorf("node %d: exact %v vs propagated %v", id, exact[id], prop[id])
		}
	}
}

func TestPropagatedDivergesOnReconvergence(t *testing.T) {
	// y = a & !a is constant 0; the independence assumption says 0.25.
	nw := logic.New("rc")
	a := nw.MustInput("a")
	na := nw.MustGate("na", logic.Not, a)
	y := nw.MustGate("y", logic.And, a, na)
	if err := nw.MarkOutput(y); err != nil {
		t.Fatal(err)
	}
	exact, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := PropagatedProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact[y] != 0 {
		t.Errorf("exact P(a&!a) = %v, want 0", exact[y])
	}
	if math.Abs(prop[y]-0.25) > 1e-12 {
		t.Errorf("propagated P(a&!a) = %v, want 0.25", prop[y])
	}
}

func TestGateProbAllTypes(t *testing.T) {
	nw := logic.New("g")
	a := nw.MustInput("a")
	b := nw.MustInput("b")
	ids := map[string]logic.NodeID{
		"and":  nw.MustGate("g_and", logic.And, a, b),
		"or":   nw.MustGate("g_or", logic.Or, a, b),
		"nand": nw.MustGate("g_nand", logic.Nand, a, b),
		"nor":  nw.MustGate("g_nor", logic.Nor, a, b),
		"xor":  nw.MustGate("g_xor", logic.Xor, a, b),
		"xnor": nw.MustGate("g_xnor", logic.Xnor, a, b),
		"buf":  nw.MustGate("g_buf", logic.Buf, a),
		"not":  nw.MustGate("g_not", logic.Not, a),
	}
	for _, id := range ids {
		_ = nw.MarkOutput(id)
	}
	in := Probabilities{a: 0.3, b: 0.6}
	prop, err := PropagatedProbabilities(nw, in)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"and": 0.18, "or": 0.72, "nand": 0.82, "nor": 0.28,
		"xor": 0.3*0.4 + 0.7*0.6, "xnor": 1 - (0.3*0.4 + 0.7*0.6),
		"buf": 0.3, "not": 0.7,
	}
	for name, w := range want {
		if got := prop[ids[name]]; math.Abs(got-w) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", name, got, w)
		}
	}
	// With no reconvergence the exact result must agree.
	exact, err := ExactProbabilities(nw, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, id := range ids {
		if math.Abs(exact[id]-prop[id]) > 1e-12 {
			t.Errorf("%s: exact %v vs propagated %v", name, exact[id], prop[id])
		}
	}
}

func TestActivityFormula(t *testing.T) {
	ps := Probabilities{1: 0.5, 2: 0.1, 3: 0.0}
	if got := ps.Activity(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("activity(0.5) = %v, want 0.5", got)
	}
	if got := ps.Activity(2); math.Abs(got-0.18) > 1e-12 {
		t.Errorf("activity(0.1) = %v, want 0.18", got)
	}
	if ps.Activity(3) != 0 {
		t.Error("activity(0) should be 0")
	}
}

func TestEvaluateScaling(t *testing.T) {
	nw := mustMux(t)
	ps, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1 := DefaultParams()
	rep1 := Evaluate(nw, p1, nil, ps.Activity)
	// Halving Vdd must cut switching power 4x (the quadratic lever the
	// survey's architecture-level section is built on).
	p2 := p1
	p2.Vdd = p1.Vdd / 2
	p2.LeakPerGate = 0 // isolate the V^2 terms
	p1b := p1
	p1b.LeakPerGate = 0
	rep2 := Evaluate(nw, p2, nil, ps.Activity)
	rep1b := Evaluate(nw, p1b, nil, ps.Activity)
	if math.Abs(rep1b.Total()/rep2.Total()-4.0) > 1e-9 {
		t.Errorf("Vdd/2 power ratio = %v, want 4", rep1b.Total()/rep2.Total())
	}
	if rep1.Total() <= 0 {
		t.Error("power should be positive")
	}
	if !strings.Contains(rep1.String(), "switching") {
		t.Error("report string should mention switching")
	}
}

func TestSwitchingShareOver90Percent(t *testing.T) {
	// E1 sanity: with default params, switching dominates (>90%).
	nw, err := circuits.RippleAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EstimateExact(nw, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.SwitchingShare(); s < 0.90 {
		t.Errorf("switching share = %v, want > 0.90", s)
	}
}

func TestTopConsumers(t *testing.T) {
	nw := mustMux(t)
	rep, err := EstimateExact(nw, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := rep.TopConsumers(3)
	if len(top) != 3 {
		t.Fatalf("want 3 consumers, got %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Total() > top[i-1].Total() {
			t.Error("TopConsumers not sorted descending")
		}
	}
	if got := rep.TopConsumers(1000); len(got) != len(rep.Nodes) {
		t.Error("TopConsumers should clamp k")
	}
}

func TestEstimateSimulatedCapturesGlitchPower(t *testing.T) {
	// The unbalanced parity chain glitches; zero-delay exact estimation
	// misses that power, event-driven simulation sees it.
	chain, err := circuits.ParityChain(12)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	vecs := sim.RandomVectors(r, 600, 12, 0.5)
	p := DefaultParams()
	simRep, tot, err := EstimateSimulated(chain, p, nil, sim.UnitDelay, vecs)
	if err != nil {
		t.Fatal(err)
	}
	exactRep, err := EstimateExact(chain, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Spurious == 0 {
		t.Fatal("expected glitches on parity chain")
	}
	if simRep.Switching <= exactRep.Switching {
		t.Errorf("simulated switching %v should exceed zero-delay %v (glitch power)",
			simRep.Switching, exactRep.Switching)
	}
}

func TestSequentialProbabilities(t *testing.T) {
	// 1-bit toggle counter with enable always 1: q spends half its time in
	// each state.
	nw := logic.New("tgl")
	en := nw.MustInput("en")
	c0, _ := nw.AddConst("c0", false)
	q, err := nw.AddDFF("q", c0, false)
	if err != nil {
		t.Fatal(err)
	}
	d := nw.MustGate("d", logic.Xor, en, q)
	if err := nw.ReplaceFanin(q, c0, d); err != nil {
		t.Fatal(err)
	}
	if err := nw.DeleteNode(c0); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(q); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	ps, err := SequentialProbabilities(nw, r, 4000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps[q]-0.5) > 0.05 {
		t.Errorf("P(q) = %v, want ~0.5", ps[q])
	}
	if ps[en] != 1.0 {
		t.Errorf("P(en) = %v, want 1.0", ps[en])
	}
}

func TestCapModels(t *testing.T) {
	nw := mustMux(t)
	s := nw.Node(nw.ByName("s"))
	// s drives ns and t1: two input pins + self.
	if got := UnitLoadCap(nw, s); got != 3.0 {
		t.Errorf("UnitLoadCap(s) = %v, want 3", got)
	}
	o := nw.Node(nw.ByName("o"))
	// o drives nothing internally but is a PO: self + external load.
	if got := UnitLoadCap(nw, o); got != 2.0 {
		t.Errorf("UnitLoadCap(o) = %v, want 2", got)
	}
	// WeightedGateCap adds 0.5 per fanin for gates.
	if got := WeightedGateCap(nw, o); got != 3.0 {
		t.Errorf("WeightedGateCap(o) = %v, want 3", got)
	}
	if got := WeightedGateCap(nw, s); got != 3.0 {
		t.Errorf("WeightedGateCap(s) = %v, want 3 (inputs are not gates)", got)
	}
}

// Property: for any combinational circuit, zero-delay useful activity
// measured by simulation converges to 2p(1-p) from exact probabilities.
func TestSimulatedMatchesProbabilistic(t *testing.T) {
	nw, err := circuits.Comparator(5)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := ExactProbabilities(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(23))
	if _, err := s.Run(sim.RandomVectors(r, 20000, 10, 0.5)); err != nil {
		t.Fatal(err)
	}
	for _, id := range nw.Gates() {
		want := ps.Activity(id)
		got := s.UsefulActivity(id)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("node %s: measured useful activity %v, probabilistic %v",
				nw.Node(id).Name, got, want)
		}
	}
}
