package power

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/sim"
)

// fsmNetwork builds a small feedback FSM (glitchy next-state logic) for
// the sequential estimator paths.
func fsmNetwork(t *testing.T) *logic.Network {
	t.Helper()
	nw := logic.New("fsm")
	x0 := nw.MustInput("x0")
	x1 := nw.MustInput("x1")
	q0, err := nw.AddDFF("q0", x0, false)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := nw.AddDFF("q1", x1, true)
	if err != nil {
		t.Fatal(err)
	}
	a := nw.MustGate("a", logic.Xor, x0, q1)
	b := nw.MustGate("b", logic.And, x1, q0)
	c := nw.MustGate("c", logic.Or, a, b)
	d0 := nw.MustGate("d0", logic.Xor, c, q0)
	d1 := nw.MustGate("d1", logic.Nand, c, a)
	if err := nw.ReplaceFanin(q0, x0, d0); err != nil {
		t.Fatal(err)
	}
	if err := nw.ReplaceFanin(q1, x1, d1); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(c); err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestEstimateSimulatedParallelByteIdentical: the report produced with 1,
// 2, and 8 workers is byte-for-byte the same — same floats, same node
// order — on both combinational and sequential networks.
func TestEstimateSimulatedParallelByteIdentical(t *testing.T) {
	comb, err := circuits.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	for name, nw := range map[string]*logic.Network{"mult4": comb, "fsm": fsmNetwork(t)} {
		r := rand.New(rand.NewSource(29))
		vecs := sim.RandomVectors(r, 300, len(nw.PIs()), 0.5)
		p := DefaultParams()

		refRep, refTot, err := EstimateSimulatedParallel(nw, p, nil, sim.UnitDelay, vecs, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refBytes := fmt.Sprintf("%+v %+v", refRep, refTot)
		for _, workers := range []int{2, 8} {
			rep, tot, err := EstimateSimulatedParallel(nw, p, nil, sim.UnitDelay, vecs, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if got := fmt.Sprintf("%+v %+v", rep, tot); got != refBytes {
				t.Errorf("%s: workers=%d report differs from workers=1", name, workers)
			}
			if !reflect.DeepEqual(rep, refRep) || tot != refTot {
				t.Errorf("%s: workers=%d structures differ from workers=1", name, workers)
			}
		}

		// The default entry point (EstimateSimulated, workers=GOMAXPROCS)
		// must agree too — this is what E5/E11/E13 call.
		rep, tot, err := EstimateSimulated(nw, p, nil, sim.UnitDelay, vecs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := fmt.Sprintf("%+v %+v", rep, tot); got != refBytes {
			t.Errorf("%s: EstimateSimulated differs from sequential EstimateSimulatedParallel", name)
		}
	}
}

// TestEstimateZeroDelayPackedMatchesScalar: the packed fast path produces
// exactly the report of a scalar zero-delay estimate (useful activity of
// the event-driven simulator, PI activity from the vector stream).
func TestEstimateZeroDelayPackedMatchesScalar(t *testing.T) {
	nw, err := circuits.CLAAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	vecs := sim.RandomVectors(r, 200, len(nw.PIs()), 0.5)
	p := DefaultParams()

	prep, ptot, err := EstimateZeroDelayPacked(nw, p, nil, vecs)
	if err != nil {
		t.Fatal(err)
	}

	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	stot, err := s.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	piAct := piActivity(nw, vecs)
	want := Evaluate(nw, p, nil, func(id logic.NodeID) float64 {
		if a, ok := piAct[id]; ok {
			return a
		}
		return s.UsefulActivity(id)
	})
	if !reflect.DeepEqual(prep, want) {
		t.Error("packed report differs from scalar useful-activity report")
	}
	if ptot.Useful != stot.Useful {
		t.Errorf("packed useful total %d, event-driven %d", ptot.Useful, stot.Useful)
	}
	if ptot.Spurious != 0 {
		t.Errorf("packed spurious total %d, want 0 (zero delay)", ptot.Spurious)
	}

	// Sequential networks must be rejected, not silently mis-measured.
	if _, _, err := EstimateZeroDelayPacked(fsmNetwork(t), p, nil, [][]bool{{false, false}}); err == nil {
		t.Error("EstimateZeroDelayPacked accepted a sequential network")
	}
}

func TestShardSeedDecorrelation(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for i := 0; i < 64; i++ {
			s := ShardSeed(seed, i)
			if seen[s] {
				t.Fatalf("ShardSeed collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
			if s2 := ShardSeed(seed, i); s2 != s {
				t.Fatalf("ShardSeed not deterministic at seed=%d i=%d", seed, i)
			}
		}
	}
}

// TestSequentialProbabilitiesShardedDeterminism: for a fixed (seed,
// cycles, shards) the sharded estimator is exactly reproducible, shards=1
// reproduces the single-stream estimator on ShardSeed(seed, 0), and the
// estimate stays statistically sane as shards vary.
func TestSequentialProbabilitiesShardedDeterminism(t *testing.T) {
	nw := fsmNetwork(t)
	const seed, cycles = 41, 400

	for _, shards := range []int{1, 2, 8} {
		a, err := SequentialProbabilitiesSharded(nw, seed, cycles, shards, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SequentialProbabilitiesSharded(nw, seed, cycles, shards, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shards=%d: repeated runs differ", shards)
		}
		for _, pi := range nw.PIs() {
			if a[pi] != 0.5 {
				t.Errorf("shards=%d: PI probability %v, want 0.5", shards, a[pi])
			}
		}
		for _, f := range nw.FFs() {
			if a[f] < 0 || a[f] > 1 {
				t.Errorf("shards=%d: FF probability %v out of range", shards, a[f])
			}
		}
	}

	single, err := SequentialProbabilities(nw, rand.New(rand.NewSource(ShardSeed(seed, 0))), cycles, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sharded1, err := SequentialProbabilitiesSharded(nw, seed, cycles, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, sharded1) {
		t.Error("shards=1 does not reproduce SequentialProbabilities")
	}

	// Shard count above the cycle budget clamps instead of spawning empty
	// streams.
	if _, err := SequentialProbabilitiesSharded(nw, seed, 3, 100, 0.5); err != nil {
		t.Errorf("over-sharded call failed: %v", err)
	}
}
