package power

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/obsv"
)

// TestEstimateExactCtxUnbudgetedIdentical is the acceptance bit-identity
// check: a budget that is never hit must produce exactly the report the
// unbudgeted estimator produces.
func TestEstimateExactCtxUnbudgetedIdentical(t *testing.T) {
	nw, err := circuits.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	plain, err := EstimateExact(nw, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	big, err := EstimateExactCtx(context.Background(), nw, p, nil, nil,
		ExactOptions{Budget: bdd.Budget{MaxNodes: 1 << 22, MaxSteps: 1 << 42}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Degraded {
		t.Fatal("generous budget degraded to Monte Carlo")
	}
	if plain.Total() != big.Total() || plain.Switching != big.Switching {
		t.Fatalf("budgeted (unhit) report differs: %v vs %v", plain, big)
	}
	if len(plain.Nodes) != len(big.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(plain.Nodes), len(big.Nodes))
	}
	for i := range plain.Nodes {
		if plain.Nodes[i] != big.Nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, plain.Nodes[i], big.Nodes[i])
		}
	}
}

func TestEstimateExactCtxDegradesOnTinyBudget(t *testing.T) {
	nw, err := circuits.ArrayMultiplier(5)
	if err != nil {
		t.Fatal(err)
	}
	reg := obsv.Enable()
	defer obsv.Disable()
	p := DefaultParams()
	rep, err := EstimateExactCtx(context.Background(), nw, p, nil, nil,
		ExactOptions{Budget: bdd.Budget{MaxNodes: 16}, MCVectors: 512})
	if err != nil {
		t.Fatalf("tiny budget must degrade, not fail: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("Degraded flag not set under a 16-node budget")
	}
	if rep.DegradeReason == "" {
		t.Fatal("DegradeReason empty")
	}
	if rep.Total() <= 0 {
		t.Fatalf("degraded report has non-positive power %v", rep.Total())
	}
	if got := reg.Counter("power.exact.degraded").Value(); got != 1 {
		t.Fatalf("power.exact.degraded = %d, want 1", got)
	}
	// The degraded estimate is still in the right ballpark: within 3x of
	// the exact answer on this well-conditioned circuit.
	exact, err := EstimateExact(nw, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := rep.Total() / exact.Total(); ratio < 1/3.0 || ratio > 3.0 {
		t.Fatalf("degraded/exact power ratio %.2f out of range", ratio)
	}
}

func TestEstimateExactCtxDegradedDeterministic(t *testing.T) {
	nw, err := circuits.CLAAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	opt := ExactOptions{Budget: bdd.Budget{MaxSteps: 32}, MCVectors: 256, MCSeed: 7}
	a, err := EstimateExactCtx(context.Background(), nw, p, nil, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateExactCtx(context.Background(), nw, p, nil, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degraded || !b.Degraded {
		t.Fatal("32-step budget did not degrade")
	}
	if a.Total() != b.Total() {
		t.Fatalf("degraded reports not reproducible: %v vs %v", a.Total(), b.Total())
	}
}

// TestEstimateExactCtxSequentialDegrades exercises the scalar sequential
// fallback path: flip-flops rule out the packed engine.
func TestEstimateExactCtxSequentialDegrades(t *testing.T) {
	nw := logic.New("seqdeg")
	var ins []logic.NodeID
	for i := 0; i < 4; i++ {
		ins = append(ins, nw.MustInput([]string{"a", "b", "c", "d"}[i]))
	}
	x1 := nw.MustGate("x1", logic.Xor, ins[0], ins[1])
	x2 := nw.MustGate("x2", logic.Xor, x1, ins[2])
	ff, err := nw.AddDFF("ff", x2, false)
	if err != nil {
		t.Fatal(err)
	}
	x3 := nw.MustGate("x3", logic.Xor, ff, ins[3])
	if err := nw.MarkOutput(x3); err != nil {
		t.Fatal(err)
	}
	rep, err := EstimateExactCtx(context.Background(), nw, DefaultParams(), nil, nil,
		ExactOptions{Budget: bdd.Budget{MaxSteps: 2}, MCVectors: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("sequential network did not degrade under a 2-step budget")
	}
	if rep.Total() <= 0 {
		t.Fatalf("degraded sequential report has power %v", rep.Total())
	}
}

func TestEstimateExactCtxHardCancellation(t *testing.T) {
	nw, err := circuits.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Cancellation means "stop", not "degrade": the estimator must return
	// the context error instead of falling back to Monte Carlo.
	_, err = EstimateExactCtx(ctx, nw, DefaultParams(), nil, nil, ExactOptions{MCVectors: 1 << 16})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestExactProbabilitiesCtxDeadline(t *testing.T) {
	nw, err := circuits.ArrayMultiplier(6)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := ExactProbabilitiesCtx(ctx, nw, nil, bdd.Budget{}); err == nil {
		t.Fatal("expired deadline produced probabilities")
	}
}

// TestBudgetTripLeavesNoStickyState is the poisoned-manager regression:
// an estimate that trips its BDD budget and degrades must leave nothing
// behind — no sticky manager error, no cached partial BDD — that could
// degrade or skew a later clean estimate over the SAME network value.
// The later estimate must be exact, non-degraded, and bit-identical to
// what a process that never tripped a budget computes.
func TestBudgetTripLeavesNoStickyState(t *testing.T) {
	nw, err := circuits.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()

	// Reference from a pristine path, before any budget trip.
	want, err := EstimateExact(nw, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Trip the budget hard, twice, on the same network.
	for i := 0; i < 2; i++ {
		deg, err := EstimateExactCtx(context.Background(), nw, p, nil, nil,
			ExactOptions{Budget: bdd.Budget{MaxNodes: 8}})
		if err != nil {
			t.Fatal(err)
		}
		if !deg.Degraded {
			t.Fatal("8-node budget on mult4 should degrade")
		}
	}

	// A clean (ample-budget) estimate on the same path must now be exact
	// and bit-identical to the pre-trip reference.
	got, err := EstimateExactCtx(context.Background(), nw, p, nil, nil,
		ExactOptions{Budget: bdd.Budget{MaxNodes: 1 << 22}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatal("clean estimate degraded after earlier budget trips on the same network")
	}
	if got.Total() != want.Total() || got.Switching != want.Switching {
		t.Fatalf("post-trip estimate differs from pristine: %v vs %v", got, want)
	}
	for i := range want.Nodes {
		if want.Nodes[i] != got.Nodes[i] {
			t.Fatalf("node %d differs after budget trips: %+v vs %+v", i, want.Nodes[i], got.Nodes[i])
		}
	}
}
