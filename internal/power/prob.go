package power

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/logic"
	"repro/internal/obsv"
	"repro/internal/sim"
)

// Probabilities holds per-node static signal probabilities: the probability
// that the node's output is 1 in a randomly chosen cycle.
type Probabilities map[logic.NodeID]float64

// Activity converts signal probabilities to zero-delay switching activity
// under the temporal-independence assumption: a net with probability p
// toggles with probability 2·p·(1−p) per cycle.
func (ps Probabilities) Activity(id logic.NodeID) float64 {
	p := ps[id]
	return 2 * p * (1 - p)
}

// ExactProbabilities computes exact signal probabilities for every node
// via global BDDs. inputProb maps circuit source nodes (PIs and FF
// outputs) to their 1-probability; missing entries default to 0.5.
// Reconvergent fanout is handled exactly — this is the reference against
// which the propagation approximation is measured.
func ExactProbabilities(nw *logic.Network, inputProb Probabilities) (Probabilities, error) {
	return ExactProbabilitiesCtx(context.Background(), nw, inputProb, bdd.Budget{})
}

// PropagatedProbabilities computes approximate signal probabilities by
// forward propagation assuming spatial independence of gate inputs — fast
// but inexact under reconvergent fanout. XOR-class gates are computed by
// enumerating input combinations (fanin is small in mapped netlists).
func PropagatedProbabilities(nw *logic.Network, inputProb Probabilities) (Probabilities, error) {
	out := make(Probabilities)
	for _, src := range append(append([]logic.NodeID(nil), nw.PIs()...), nw.FFs()...) {
		p, ok := inputProb[src]
		if !ok {
			p = 0.5
		}
		out[src] = p
	}
	order, err := nw.TopoOrder()
	if err != nil {
		return nil, err
	}
	propagated := 0
	var buf []float64
	for _, id := range order {
		n := nw.Node(id)
		p, counted, err := propagateNode(n, out, &buf)
		if err != nil {
			return nil, err
		}
		out[id] = p
		if counted {
			propagated++
		}
	}
	obsv.Default().Counter("power.prop.nodes").Add(int64(propagated))
	return out, nil
}

// propagateNode computes one node's propagated probability from the
// already-filled table of its fanins. It is the single propagation kernel
// shared by the full forward pass and incremental cone re-propagation
// (IncrementalEstimator), so the two paths are bit-identical by
// construction — same fanin read order, same float operations. The
// second result reports whether the node went through a gate rule (what
// the power.prop.nodes counter counts); buf is scratch reused across
// calls.
func propagateNode(n *logic.Node, table Probabilities, buf *[]float64) (float64, bool, error) {
	switch n.Type {
	case logic.Const0:
		return 0, false, nil
	case logic.Const1:
		return 1, false, nil
	default:
		ps := (*buf)[:0]
		for _, f := range n.Fanin {
			ps = append(ps, table[f])
		}
		*buf = ps
		p, err := gateProb(n.Type, ps)
		return p, true, err
	}
}

func gateProb(t logic.GateType, ps []float64) (float64, error) {
	switch t {
	case logic.Buf:
		return ps[0], nil
	case logic.Not:
		return 1 - ps[0], nil
	case logic.And:
		p := 1.0
		for _, q := range ps {
			p *= q
		}
		return p, nil
	case logic.Nand:
		p := 1.0
		for _, q := range ps {
			p *= q
		}
		return 1 - p, nil
	case logic.Or:
		p := 1.0
		for _, q := range ps {
			p *= 1 - q
		}
		return 1 - p, nil
	case logic.Nor:
		p := 1.0
		for _, q := range ps {
			p *= 1 - q
		}
		return p, nil
	case logic.Xor, logic.Xnor:
		// P(odd number of ones); independent inputs give the closed form
		// (1 - prod(1-2p_i)) / 2.
		prod := 1.0
		for _, q := range ps {
			prod *= 1 - 2*q
		}
		pOdd := (1 - prod) / 2
		if t == logic.Xor {
			return pOdd, nil
		}
		return 1 - pOdd, nil
	}
	return 0, fmt.Errorf("power: no probability rule for gate type %s", t)
}

// SequentialProbabilities estimates flip-flop output probabilities by
// warm-up simulation under random primary inputs with the given bias, then
// returns a Probabilities map covering the PIs (set to piProb) and FFs
// (measured). This is the simulation-based abstraction of Monteiro and
// Devadas [28]: the combinational estimators can then treat FF outputs as
// independent sources.
func SequentialProbabilities(nw *logic.Network, r *rand.Rand, cycles int, piProb float64) (Probabilities, error) {
	st := logic.NewState(nw)
	ones := make(map[logic.NodeID]int)
	in := make([]bool, len(nw.PIs()))
	for c := 0; c < cycles; c++ {
		for i := range in {
			in[i] = r.Float64() < piProb
		}
		if _, err := st.Step(in); err != nil {
			return nil, err
		}
		for _, f := range nw.FFs() {
			if st.Value(f) {
				ones[f]++
			}
		}
	}
	out := make(Probabilities)
	for _, pi := range nw.PIs() {
		out[pi] = piProb
	}
	for _, f := range nw.FFs() {
		if cycles > 0 {
			out[f] = float64(ones[f]) / float64(cycles)
		} else {
			out[f] = 0.5
		}
	}
	return out, nil
}

// EstimateExact produces an Eqn. 1 report from exact (BDD) zero-delay
// activity. Sequential networks get FF probabilities from warm-up
// simulation first when seqWarmup > 0.
func EstimateExact(nw *logic.Network, p Params, cm CapModel, inputProb Probabilities) (Report, error) {
	ps, err := ExactProbabilities(nw, inputProb)
	if err != nil {
		return Report{}, err
	}
	return Evaluate(nw, p, cm, ps.Activity), nil
}

// EstimatePropagated produces an Eqn. 1 report from propagated
// (independence-assumption) zero-delay activity.
func EstimatePropagated(nw *logic.Network, p Params, cm CapModel, inputProb Probabilities) (Report, error) {
	ps, err := PropagatedProbabilities(nw, inputProb)
	if err != nil {
		return Report{}, err
	}
	return Evaluate(nw, p, cm, ps.Activity), nil
}

// EstimateSimulated produces an Eqn. 1 report from measured event-driven
// activity over the supplied vectors, capturing glitch power that the
// zero-delay estimators miss. It returns the report and the simulation
// totals. The simulation is sharded across GOMAXPROCS workers; results
// are bit-identical to a sequential run (see sim.MeasureRun).
func EstimateSimulated(nw *logic.Network, p Params, cm CapModel, dm sim.DelayModel, vectors [][]bool) (Report, sim.Totals, error) {
	return EstimateSimulatedParallel(nw, p, cm, dm, vectors, 0)
}

// EstimateSimulatedParallel is EstimateSimulated with an explicit worker
// count (0 = GOMAXPROCS, 1 = sequential). Any worker count produces the
// same report bit for bit: the vector stream is chunked deterministically
// and each shard warm-starts from the exact settled state at its boundary.
func EstimateSimulatedParallel(nw *logic.Network, p Params, cm CapModel, dm sim.DelayModel, vectors [][]bool, workers int) (Report, sim.Totals, error) {
	return EstimateSimulatedParallelCtx(context.Background(), nw, p, cm, dm, vectors, workers)
}

// EstimateSimulatedParallelCtx is EstimateSimulatedParallel under a
// context: cancellation stops the run before it starts, and a trace
// carried by ctx (internal/obsv/trace) gains the simulation span. The
// report is bit-identical to the context-free variant.
func EstimateSimulatedParallelCtx(ctx context.Context, nw *logic.Network, p Params, cm CapModel, dm sim.DelayModel, vectors [][]bool, workers int) (Report, sim.Totals, error) {
	m, err := sim.MeasureRunCtx(ctx, nw, dm, vectors, workers)
	if err != nil {
		return Report{}, sim.Totals{}, err
	}
	piAct := piActivity(nw, vectors)
	rep := Evaluate(nw, p, cm, func(id logic.NodeID) float64 {
		if a, ok := piAct[id]; ok {
			return a
		}
		return m.Activity(id)
	})
	return rep, m.Totals, nil
}

// piActivity measures each primary input's activity from the vector
// stream itself (the simulator does not charge source nets).
func piActivity(nw *logic.Network, vectors [][]bool) map[logic.NodeID]float64 {
	piAct := make(map[logic.NodeID]float64)
	if len(vectors) == 0 {
		return piAct
	}
	for i, pi := range nw.PIs() {
		tr := 0
		prev := false
		for c, v := range vectors {
			if c == 0 {
				prev = v[i]
				if prev { // initial settle from all-zero reset
					tr++
				}
				continue
			}
			if v[i] != prev {
				tr++
				prev = v[i]
			}
		}
		piAct[pi] = float64(tr) / float64(len(vectors))
	}
	return piAct
}

// EstimateZeroDelayPacked produces an Eqn. 1 report from the bit-parallel
// packed engine (sim.PackedSimulator): measured zero-delay activity at 64
// vectors per machine word. It is the fast path for Monte Carlo power
// estimation on combinational networks when glitch power is not needed —
// its per-node activity equals the useful (zero-delay) component of
// EstimateSimulated over the same vectors.
func EstimateZeroDelayPacked(nw *logic.Network, p Params, cm CapModel, vectors [][]bool) (Report, sim.Totals, error) {
	ps, err := sim.NewPacked(nw)
	if err != nil {
		return Report{}, sim.Totals{}, err
	}
	tot, err := ps.Run(vectors)
	if err != nil {
		return Report{}, sim.Totals{}, err
	}
	piAct := piActivity(nw, vectors)
	rep := Evaluate(nw, p, cm, func(id logic.NodeID) float64 {
		if a, ok := piAct[id]; ok {
			return a
		}
		return ps.Activity(id)
	})
	return rep, tot, nil
}

// EstimateSimulatedWith is EstimateSimulated with a sim.Tracer attached to
// the internal simulator for the duration of the run. The power-attribution
// profiler (internal/obsv/profile) uses this to observe every transition —
// including the glitch pulses — of exactly the run whose total the report
// states, so per-node attribution sums to the reported power by
// construction.
func EstimateSimulatedWith(nw *logic.Network, p Params, cm CapModel, dm sim.DelayModel, vectors [][]bool, tracer sim.Tracer) (Report, sim.Totals, error) {
	if tracer == nil {
		return EstimateSimulatedParallel(nw, p, cm, dm, vectors, 0)
	}
	// A tracer observes every transition in stream order, so the traced
	// run stays on the single sequential simulator.
	s, err := sim.New(nw, dm)
	if err != nil {
		return Report{}, sim.Totals{}, err
	}
	s.SetTracer(tracer)
	tot, err := s.Run(vectors)
	if err != nil {
		return Report{}, sim.Totals{}, err
	}
	piAct := piActivity(nw, vectors)
	rep := Evaluate(nw, p, cm, func(id logic.NodeID) float64 {
		if a, ok := piAct[id]; ok {
			return a
		}
		return s.Activity(id)
	})
	return rep, tot, nil
}
