package power

import (
	"repro/internal/bdd"
	"repro/internal/logic"
	"repro/internal/obsv"
)

// TransitionDensities computes per-node transition densities by Najm's
// propagation rule (the survey's §IV.A points at Najm's estimation survey
// [31] for gate-level tooling):
//
//	D(y) = Σ_i P(∂y/∂x_i) · D(x_i)
//
// where ∂y/∂x_i = y|x=1 ⊕ y|x=0 is the Boolean difference, its
// probability computed exactly on the global BDDs. inputDensity maps
// source nodes (PIs, FFs) to their transition density (average transitions
// per cycle, e.g. 2·p·(1−p) for temporally independent sources or a
// measured rate); inputProb gives their static probabilities (nil =
// uniform). Unlike the zero-delay pair model, density propagation
// accounts for a net transitioning more than once per cycle — it is the
// standard upper-level estimate of glitch-inclusive activity.
func TransitionDensities(nw *logic.Network, inputDensity map[logic.NodeID]float64, inputProb Probabilities) (map[logic.NodeID]float64, error) {
	nb, err := bdd.FromNetwork(nw)
	if err != nil {
		return nil, err
	}
	m := nb.M
	pv := make([]float64, m.NumVars())
	for i, src := range nb.Vars {
		p := 0.5
		if inputProb != nil {
			if q, ok := inputProb[src]; ok {
				p = q
			}
		}
		pv[i] = p
	}
	density := make(map[logic.NodeID]float64, len(nb.Fn))
	for i, src := range nb.Vars {
		d := 0.5
		if inputDensity != nil {
			if v, ok := inputDensity[src]; ok {
				d = v
			}
		}
		density[src] = d
		_ = i
	}
	order, err := nw.TopoOrder()
	if err != nil {
		return nil, err
	}
	diffs := 0
	for _, id := range order {
		n := nw.Node(id)
		f := nb.Fn[id]
		if !n.Type.IsGate() {
			density[id] = 0 // constants
			continue
		}
		total := 0.0
		for _, vi := range m.Support(f) {
			diff := m.Xor(m.Restrict(f, vi, true), m.Restrict(f, vi, false))
			src := nb.Vars[vi]
			total += m.Probability(diff, pv) * density[src]
			diffs++
		}
		density[id] = total
	}
	obsv.Default().Counter("power.density.diffs").Add(int64(diffs))
	return density, nil
}

// EstimateDensity produces an Eqn. 1 report from propagated transition
// densities — the glitch-aware probabilistic estimator sitting between
// the zero-delay exact estimate and full event-driven simulation.
func EstimateDensity(nw *logic.Network, p Params, cm CapModel, inputDensity map[logic.NodeID]float64, inputProb Probabilities) (Report, error) {
	dens, err := TransitionDensities(nw, inputDensity, inputProb)
	if err != nil {
		return Report{}, err
	}
	return Evaluate(nw, p, cm, func(id logic.NodeID) float64 { return dens[id] }), nil
}
