package power

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/sim"
)

// sparseFlipVectors generates a vector stream where each input independently
// flips with probability q per cycle. Sparse flips (small q) keep
// simultaneous input transitions rare, which is the regime where Najm's
// density propagation is near-exact — the rule sums per-input Boolean
// difference contributions and so double-counts transitions that cancel
// when two inputs switch in the same cycle.
func sparseFlipVectors(r *rand.Rand, n, width int, q float64) [][]bool {
	vecs := make([][]bool, n)
	cur := make([]bool, width)
	for i := range cur {
		cur[i] = r.Intn(2) == 1
	}
	for t := 0; t < n; t++ {
		v := make([]bool, width)
		for i := range cur {
			if r.Float64() < q {
				cur[i] = !cur[i]
			}
			v[i] = cur[i]
		}
		vecs[t] = v
	}
	return vecs
}

// measuredInputs derives the per-PI transition density and signal
// probability actually realized by a vector stream, so the propagated
// estimate and the simulation see identical primary-input statistics and
// the comparison isolates the propagation rule itself.
func measuredInputs(nw *logic.Network, vectors [][]bool) (map[logic.NodeID]float64, Probabilities) {
	dens := map[logic.NodeID]float64{}
	prob := Probabilities{}
	pis := nw.PIs()
	for i, pi := range pis {
		flips, ones := 0, 0
		for t, v := range vectors {
			if v[i] {
				ones++
			}
			if t > 0 && v[i] != vectors[t-1][i] {
				flips++
			}
		}
		dens[pi] = float64(flips) / float64(len(vectors)-1)
		prob[pi] = float64(ones) / float64(len(vectors))
	}
	return dens, prob
}

// On a parity (XOR) tree driven by sparse, mostly non-simultaneous input
// flips, propagated transition densities must match simulated per-node
// activity within a modest tolerance: every Boolean difference of an XOR is
// the constant-1 function, so D(y) = Σ D(xi) exactly, and unit-delay
// simulation produces no glitches when at most one input flips per cycle.
func TestDensityMatchesSimulatedActivityOnParityTree(t *testing.T) {
	nw, err := circuits.ParityTree(16)
	if err != nil {
		t.Fatal(err)
	}
	const cycles, q = 20000, 0.005
	r := rand.New(rand.NewSource(7))
	vectors := sparseFlipVectors(r, cycles, len(nw.PIs()), q)
	inDens, inProb := measuredInputs(nw, vectors)

	dens, err := TransitionDensities(nw, inDens, inProb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(vectors); err != nil {
		t.Fatal(err)
	}

	const relTol = 0.12
	checked := 0
	for id := logic.NodeID(0); id < logic.NodeID(nw.NumNodes()); id++ {
		n := nw.Node(id)
		if n == nil || !n.Type.IsGate() || n.Dead() {
			continue
		}
		want := dens[id]
		got := s.Activity(id)
		if want < 0.01 {
			continue // below measurable rate at this cycle count
		}
		if rel := math.Abs(got-want) / want; rel > relTol {
			t.Errorf("%s: simulated activity %.4f vs predicted density %.4f (rel err %.1f%%)",
				n.Name, got, want, 100*rel)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d gates checked — parity tree should have ~15 XORs", checked)
	}
}

// On a reconvergent circuit under dense random stimulus, the propagation
// rule overestimates (simultaneous input switching makes contributions
// cancel that the sum cannot see), so densities must upper-bound the
// zero-delay useful activity on every node. The margin absorbs
// finite-sample noise of the 4000-cycle measurement, not model error.
func TestDensityUpperBoundsUsefulActivityOnRippleAdder(t *testing.T) {
	nw, err := circuits.RippleAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 4000
	r := rand.New(rand.NewSource(11))
	vectors := sim.RandomVectors(r, cycles, len(nw.PIs()), 0.5)
	inDens, inProb := measuredInputs(nw, vectors)

	dens, err := TransitionDensities(nw, inDens, inProb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(vectors); err != nil {
		t.Fatal(err)
	}

	const margin = 0.05
	violations, checked := 0, 0
	for id := logic.NodeID(0); id < logic.NodeID(nw.NumNodes()); id++ {
		n := nw.Node(id)
		if n == nil || !n.Type.IsGate() || n.Dead() {
			continue
		}
		checked++
		useful := s.UsefulActivity(id)
		if useful > dens[id]+margin {
			violations++
			t.Errorf("%s: useful activity %.4f exceeds predicted density %.4f",
				n.Name, useful, dens[id])
		}
	}
	if checked == 0 {
		t.Fatal("no gates checked")
	}
	if violations > 0 {
		t.Logf("%d/%d nodes violated the density upper bound", violations, checked)
	}
}

// The simulator accessors feeding the profiler must agree with the
// normalized activity values: Transitions/cycles == Activity and
// UsefulTransitions/cycles == UsefulActivity, with SpuriousActivity the
// difference.
func TestSimulatorTransitionAccessorsConsistent(t *testing.T) {
	nw, err := circuits.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	vectors := sim.RandomVectors(r, 500, len(nw.PIs()), 0.5)
	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(vectors); err != nil {
		t.Fatal(err)
	}
	cycles := float64(s.Cycles())
	for id := logic.NodeID(0); id < logic.NodeID(nw.NumNodes()); id++ {
		if nw.Node(id) == nil {
			continue
		}
		if got, want := s.Activity(id), float64(s.Transitions(id))/cycles; math.Abs(got-want) > 1e-12 {
			t.Errorf("node %d: Activity %.6f != Transitions/cycles %.6f", id, got, want)
		}
		if got, want := s.UsefulActivity(id), float64(s.UsefulTransitions(id))/cycles; math.Abs(got-want) > 1e-12 {
			t.Errorf("node %d: UsefulActivity %.6f != UsefulTransitions/cycles %.6f", id, got, want)
		}
		if got, want := s.SpuriousActivity(id), s.Activity(id)-s.UsefulActivity(id); math.Abs(got-want) > 1e-12 {
			t.Errorf("node %d: SpuriousActivity %.6f != %.6f", id, got, want)
		}
	}
}
