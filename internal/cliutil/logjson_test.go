package cliutil

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogJSONFormat(t *testing.T) {
	defer func(orig func() time.Time) { logNow = orig }(logNow)
	logNow = func() time.Time {
		return time.Date(2026, 8, 8, 12, 30, 45, 123_000_000, time.UTC)
	}
	var b bytes.Buffer
	LogJSON(&b, "access", map[string]any{
		"status":   200,
		"method":   "POST",
		"endpoint": "estimate",
		"cache":    "hit",
		"degraded": false,
	})
	got := b.String()
	want := `{"ts":"2026-08-08T12:30:45.123Z","event":"access","cache":"hit","degraded":false,"endpoint":"estimate","method":"POST","status":200}` + "\n"
	if got != want {
		t.Fatalf("LogJSON line:\n got %q\nwant %q", got, want)
	}
	// And it must be valid JSON.
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLogJSONReservedAndNil(t *testing.T) {
	var b bytes.Buffer
	LogJSON(&b, "e", map[string]any{"ts": "fake", "event": "fake", "k": 1})
	var m map[string]any
	if err := json.Unmarshal(b.Bytes(), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if m["event"] != "e" {
		t.Fatalf("reserved event key was overridden: %v", m["event"])
	}
	if m["ts"] == "fake" {
		t.Fatalf("reserved ts key was overridden")
	}
	LogJSON(nil, "e", nil) // must not panic
}

func TestLogJSONUnmarshalableValue(t *testing.T) {
	var b bytes.Buffer
	LogJSON(&b, "e", map[string]any{"bad": func() {}})
	var m map[string]any
	if err := json.Unmarshal(b.Bytes(), &m); err != nil {
		t.Fatalf("line with unmarshalable value is not valid JSON: %v (%q)", err, b.String())
	}
}

func TestLogJSONConcurrentLinesDoNotInterleave(t *testing.T) {
	var b bytes.Buffer
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				LogJSON(&b, "access", map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("interleaved/corrupt line %q: %v", ln, err)
		}
	}
}
