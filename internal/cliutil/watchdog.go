// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"os"
	"time"
)

// Watchdog arms a hard wall-clock backstop: if the process is still
// alive after d, it prints a one-line timeout error to stderr and exits
// with status 124 (the coreutils timeout convention) instead of hanging
// indefinitely or dying in a goroutine dump. d <= 0 arms nothing.
//
// The context plumbing in core and power stops work at the next pass or
// polling boundary; the watchdog exists for the code paths that are not
// context-aware. Callers that do thread a context should arm the
// watchdog with a grace margin past the context deadline so the graceful
// path wins whenever it can.
func Watchdog(tool string, d time.Duration) {
	if d <= 0 {
		return
	}
	time.AfterFunc(d, func() {
		fmt.Fprintf(os.Stderr, "%s: timeout: still running after %v\n", tool, d)
		os.Exit(124)
	})
}

// GraceAfter is the watchdog margin added past a context deadline: a
// quarter of the deadline, clamped to [1s, 30s].
func GraceAfter(d time.Duration) time.Duration {
	g := d / 4
	if g < time.Second {
		g = time.Second
	}
	if g > 30*time.Second {
		g = 30 * time.Second
	}
	return d + g
}
