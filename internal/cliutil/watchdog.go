// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Test seams: the watchdog's only observable effect is killing the
// process, so tests swap these out to assert firing without dying.
var (
	watchdogStderr io.Writer      = os.Stderr
	watchdogExit   func(code int) = os.Exit
)

// Watchdog arms a hard wall-clock backstop: if the process is still
// alive after d, it prints a one-line timeout error to stderr and exits
// with status 124 (the coreutils timeout convention) instead of hanging
// indefinitely or dying in a goroutine dump. d <= 0 arms nothing.
//
// The returned stop function disarms the watchdog; it is safe to call
// more than once and after firing. Callers MUST disarm on clean exit
// paths that keep the process alive afterwards — a long-lived process
// (lpserverd) that runs one timed operation and then keeps serving would
// otherwise be shot dead by the first operation's leftover timer. The
// one-shot CLIs disarm too, so a run that finishes just under the
// deadline cannot race its own exit against the timer.
//
// The context plumbing in core and power stops work at the next pass or
// polling boundary; the watchdog exists for the code paths that are not
// context-aware. Callers that do thread a context should arm the
// watchdog with a grace margin past the context deadline so the graceful
// path wins whenever it can.
func Watchdog(tool string, d time.Duration) (stop func()) {
	if d <= 0 {
		return func() {}
	}
	t := time.AfterFunc(d, func() {
		fmt.Fprintf(watchdogStderr, "%s: timeout: still running after %v\n", tool, d)
		watchdogExit(124)
	})
	return func() { t.Stop() }
}

// GraceAfter is the watchdog margin added past a context deadline: a
// quarter of the deadline, clamped to [1s, 30s].
func GraceAfter(d time.Duration) time.Duration {
	g := d / 4
	if g < time.Second {
		g = time.Second
	}
	if g > 30*time.Second {
		g = 30 * time.Second
	}
	return d + g
}
