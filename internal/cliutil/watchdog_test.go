package cliutil

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// swapSeams replaces the process-killing seams for one test and returns
// a poll function reporting (fired, exit code, stderr text).
func swapSeams(t *testing.T) func() (bool, int, string) {
	t.Helper()
	var mu sync.Mutex
	var buf bytes.Buffer
	fired := false
	code := 0
	oldW, oldE := watchdogStderr, watchdogExit
	watchdogStderr = writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	watchdogExit = func(c int) {
		mu.Lock()
		defer mu.Unlock()
		fired = true
		code = c
	}
	t.Cleanup(func() { watchdogStderr, watchdogExit = oldW, oldE })
	return func() (bool, int, string) {
		mu.Lock()
		defer mu.Unlock()
		return fired, code, buf.String()
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestWatchdogFires(t *testing.T) {
	state := swapSeams(t)
	stop := Watchdog("testtool", 5*time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		fired, code, msg := state()
		if fired {
			if code != 124 {
				t.Fatalf("exit code = %d, want 124", code)
			}
			if !strings.Contains(msg, "testtool: timeout") {
				t.Fatalf("stderr = %q, want tool-tagged timeout line", msg)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchdogDisarm is the long-lived-server regression: a stopped
// watchdog must never fire, no matter how long the process lives on.
func TestWatchdogDisarm(t *testing.T) {
	state := swapSeams(t)
	stop := Watchdog("testtool", 10*time.Millisecond)
	stop()
	stop() // idempotent
	time.Sleep(60 * time.Millisecond)
	if fired, _, _ := state(); fired {
		t.Fatal("disarmed watchdog fired")
	}
}

func TestWatchdogZeroDurationIsInert(t *testing.T) {
	state := swapSeams(t)
	stop := Watchdog("testtool", 0)
	stop() // must not panic
	time.Sleep(10 * time.Millisecond)
	if fired, _, _ := state(); fired {
		t.Fatal("zero-duration watchdog fired")
	}
}

func TestGraceAfterClamp(t *testing.T) {
	cases := []struct{ in, want time.Duration }{
		{time.Second, 2 * time.Second},                      // floor: +1s
		{40 * time.Second, 50 * time.Second},                // proportional: +d/4
		{10 * time.Minute, 10*time.Minute + 30*time.Second}, // ceiling: +30s
	}
	for _, c := range cases {
		if got := GraceAfter(c.in); got != c.want {
			t.Errorf("GraceAfter(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
