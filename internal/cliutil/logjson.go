package cliutil

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// logNow is a test seam: LogJSON timestamps come from here.
var logNow = time.Now

// logMu serializes writes so concurrent loggers (one goroutine per HTTP
// request in lpserverd) never interleave bytes within a line. Each line
// is emitted as a single Write call, which is already atomic for
// os.File on every platform we care about; the mutex additionally covers
// writers without that guarantee (bytes.Buffer in tests).
var logMu sync.Mutex

// LogJSON writes one machine-parseable log line to w: a flat JSON object
// with "ts" (RFC 3339, millisecond precision, UTC) first, "event"
// second, and the remaining fields in sorted key order, terminated by a
// newline. Sorted keys make the lines diff- and grep-stable: the same
// event always serializes the same way, so `grep '"endpoint":"estimate"'`
// and byte-level golden tests both work. Values marshal with
// encoding/json; a value that fails to marshal is replaced by its error
// string rather than poisoning the whole line.
func LogJSON(w io.Writer, event string, fields map[string]any) {
	if w == nil {
		return
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		if k == "ts" || k == "event" {
			continue // reserved; the positional prefix wins
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b bytes.Buffer
	b.WriteString(`{"ts":"`)
	b.WriteString(logNow().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(`","event":`)
	writeJSONValue(&b, event)
	for _, k := range keys {
		b.WriteByte(',')
		writeJSONValue(&b, k)
		b.WriteByte(':')
		writeJSONValue(&b, fields[k])
	}
	b.WriteString("}\n")

	logMu.Lock()
	w.Write(b.Bytes())
	logMu.Unlock()
}

func writeJSONValue(b *bytes.Buffer, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(err.Error())
	}
	b.Write(enc)
}
