// Package archpower implements architecture-level power estimation (survey
// §IV.A): instead of simulating gates, a datapath module (adder,
// multiplier, comparator...) is characterized once, bottom-up, and a fast
// model predicts its power from how often it is activated and what its
// input statistics look like. Three model families from the survey are
// provided, in increasing fidelity:
//
//   - GateCount   — Svensson/Liu [41]: power from gate count alone, with a
//     single technology constant.
//   - Fixed       — PFA, Powell et al. [15] / Sato et al. [36]: a constant
//     "capacitance switched per activation", characterized with random
//     vectors, ignoring signal statistics and inter-module correlation.
//   - Activity    — Landman/Rabaey [21,22]: switched capacitance as a
//     linear function of the module's input transition activity,
//     characterized at several activity points.
//
// The reference ("truth") is full gate-level event-driven simulation of
// the module netlist under the actual workload.
package archpower

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/logic"
	"repro/internal/power"
	"repro/internal/sim"
)

// Characterization holds the per-module model parameters obtained from
// bottom-up calibration.
type Characterization struct {
	Name      string
	GateCount int
	// FixedCap is the mean switched capacitance per active cycle under
	// uniform random inputs (the PFA number).
	FixedCap float64
	// ActPoints are (toggleRate, switchedCap) calibration samples; the
	// activity model interpolates piecewise-linearly between them
	// (glitching makes the relation visibly nonlinear, so a multi-point
	// table beats a straight line).
	ActPoints [][2]float64
}

// TrueSwitchedCap measures the module's real switched capacitance per
// cycle by event-driven unit-delay simulation of the netlist over the
// given vectors, using the UnitLoadCap capacitance model (glitches
// included — architecture models must absorb them into their constants).
func TrueSwitchedCap(nw *logic.Network, vectors [][]bool) (float64, error) {
	if len(vectors) == 0 {
		return 0, fmt.Errorf("archpower: empty workload")
	}
	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		return 0, err
	}
	if _, err := s.Run(vectors); err != nil {
		return 0, err
	}
	total := 0.0
	for _, id := range nw.Live() {
		c := power.UnitLoadCap(nw, nw.Node(id))
		total += c * s.Activity(id)
	}
	// Add primary-input wire switching from the vector stream itself.
	for i, pi := range nw.PIs() {
		tr := 0
		for cyc := 1; cyc < len(vectors); cyc++ {
			if vectors[cyc][i] != vectors[cyc-1][i] {
				tr++
			}
		}
		c := power.UnitLoadCap(nw, nw.Node(pi))
		total += c * float64(tr) / float64(len(vectors))
	}
	return total, nil
}

// inputToggleRate is the mean per-bit toggle probability of a vector
// stream.
func inputToggleRate(vectors [][]bool) float64 {
	if len(vectors) < 2 {
		return 0
	}
	w := len(vectors[0])
	tr := 0
	for c := 1; c < len(vectors); c++ {
		for i := 0; i < w; i++ {
			if vectors[c][i] != vectors[c-1][i] {
				tr++
			}
		}
	}
	return float64(tr) / float64((len(vectors)-1)*w)
}

// Characterize calibrates all three models for a module netlist: the
// fixed model from uniform random vectors, and the activity model as a
// piecewise-linear table over calibration streams spanning toggle rates
// 0.1..0.9.
func Characterize(name string, nw *logic.Network, r *rand.Rand, cycles int) (Characterization, error) {
	ch := Characterization{Name: name, GateCount: nw.NumGates()}
	w := len(nw.PIs())
	mk := func(p float64) [][]bool {
		// Bit flips with probability p each cycle (controls toggle rate
		// directly, holding value distribution near uniform).
		vecs := make([][]bool, cycles)
		cur := make([]bool, w)
		for i := range cur {
			cur[i] = r.Intn(2) == 1
		}
		for c := range vecs {
			v := make([]bool, w)
			for i := range v {
				if r.Float64() < p {
					cur[i] = !cur[i]
				}
				v[i] = cur[i]
			}
			vecs[c] = v
		}
		return vecs
	}
	uniform := mk(0.5)
	var err error
	ch.FixedCap, err = TrueSwitchedCap(nw, uniform)
	if err != nil {
		return ch, err
	}
	ch.ActPoints = append(ch.ActPoints, [2]float64{0, 0})
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		var vecs [][]bool
		var capAt float64
		if p == 0.5 {
			vecs, capAt = uniform, ch.FixedCap
		} else {
			vecs = mk(p)
			capAt, err = TrueSwitchedCap(nw, vecs)
			if err != nil {
				return ch, err
			}
		}
		ch.ActPoints = append(ch.ActPoints, [2]float64{inputToggleRate(vecs), capAt})
	}
	sort.Slice(ch.ActPoints, func(i, j int) bool { return ch.ActPoints[i][0] < ch.ActPoints[j][0] })
	return ch, nil
}

// PredictFixed returns the PFA estimate: FixedCap on active cycles.
func (ch Characterization) PredictFixed(activeFraction float64) float64 {
	return ch.FixedCap * activeFraction
}

// PredictActivity returns the Landman/Rabaey-style estimate given the
// workload's measured input toggle rate, by piecewise-linear
// interpolation over the calibration table.
func (ch Characterization) PredictActivity(activeFraction, toggleRate float64) float64 {
	pts := ch.ActPoints
	if len(pts) == 0 {
		return ch.FixedCap * activeFraction
	}
	v := 0.0
	switch {
	case toggleRate <= pts[0][0]:
		v = pts[0][1]
	case toggleRate >= pts[len(pts)-1][0]:
		v = pts[len(pts)-1][1]
	default:
		for i := 1; i < len(pts); i++ {
			if toggleRate <= pts[i][0] {
				a, b := pts[i-1], pts[i]
				frac := (toggleRate - a[0]) / (b[0] - a[0])
				v = a[1] + frac*(b[1]-a[1])
				break
			}
		}
	}
	if v < 0 {
		v = 0
	}
	return v * activeFraction
}

// GateCountModel predicts switched capacitance from gate count alone:
// capPerGate is the single technology constant, calibrated on a reference
// module (which is exactly why the model travels poorly between module
// types [41]).
func GateCountModel(gateCount int, capPerGate float64) float64 {
	return float64(gateCount) * capPerGate
}

// CalibrateGateCount derives the technology constant from one reference
// characterization.
func CalibrateGateCount(ref Characterization) float64 {
	if ref.GateCount == 0 {
		return 0
	}
	return ref.FixedCap / float64(ref.GateCount)
}

// WorkloadStats summarizes a stream for the models.
type WorkloadStats struct {
	ToggleRate     float64
	ActiveFraction float64
}

// AnalyzeWorkload extracts model inputs from a vector stream.
func AnalyzeWorkload(vectors [][]bool, activeFraction float64) WorkloadStats {
	return WorkloadStats{ToggleRate: inputToggleRate(vectors), ActiveFraction: activeFraction}
}

// ModelErrors compares all three predictions against the gate-level truth
// for a module under a workload; the returned map is model name → signed
// relative error.
func ModelErrors(ch Characterization, capPerGate float64, truth float64, ws WorkloadStats) map[string]float64 {
	rel := func(pred float64) float64 {
		if truth == 0 {
			return 0
		}
		return (pred - truth) / truth
	}
	return map[string]float64{
		"gatecount": rel(GateCountModel(ch.GateCount, capPerGate) * ws.ActiveFraction),
		"fixed":     rel(ch.PredictFixed(ws.ActiveFraction)),
		"activity":  rel(ch.PredictActivity(ws.ActiveFraction, ws.ToggleRate)),
	}
}
