package archpower

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/sim"
)

func TestTrueSwitchedCapBasics(t *testing.T) {
	nw, err := circuits.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	vecs := sim.RandomVectors(r, 500, len(nw.PIs()), 0.5)
	cap1, err := TrueSwitchedCap(nw, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if cap1 <= 0 {
		t.Fatal("switched cap should be positive")
	}
	// A frozen input stream switches nothing.
	frozen := make([][]bool, 100)
	for i := range frozen {
		frozen[i] = make([]bool, len(nw.PIs()))
	}
	cap0, err := TrueSwitchedCap(nw, frozen)
	if err != nil {
		t.Fatal(err)
	}
	if cap0 != 0 {
		t.Errorf("frozen workload switched %v", cap0)
	}
	if _, err := TrueSwitchedCap(nw, nil); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestCharacterizeMonotoneActivityModel(t *testing.T) {
	nw, err := circuits.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	ch, err := Characterize("mult4", nw, r, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if ch.GateCount != nw.NumGates() {
		t.Error("gate count mismatch")
	}
	if ch.FixedCap <= 0 {
		t.Error("fixed cap should be positive")
	}
	for i := 1; i < len(ch.ActPoints); i++ {
		if ch.ActPoints[i][1] < ch.ActPoints[i-1][1] {
			t.Error("switched cap should grow with input activity")
		}
	}
	// The activity model at toggle rate 0.5 should be close to FixedCap.
	pred := ch.PredictActivity(1.0, 0.5)
	if math.Abs(pred-ch.FixedCap)/ch.FixedCap > 0.25 {
		t.Errorf("activity model at nominal rate %v far from fixed cap %v", pred, ch.FixedCap)
	}
}

func TestActivityModelBeatsFixedOnBiasedWorkloads(t *testing.T) {
	// E14 shape: on a workload whose statistics differ from the random
	// calibration stream (correlated low-activity traffic), the
	// activity-sensitive model is more accurate than the fixed-cap model,
	// which in turn beats the gate-count model calibrated on another
	// module type.
	mult, err := circuits.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	add, err := circuits.RippleAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	chMult, err := Characterize("mult4", mult, r, 2000)
	if err != nil {
		t.Fatal(err)
	}
	chAdd, err := Characterize("radd8", add, r, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Technology constant calibrated on the ADDER, applied to the
	// multiplier — the gate-count model's classic failure mode.
	capPerGate := CalibrateGateCount(chAdd)

	// Correlated workload: random walk operands (low toggle rate).
	walk := sim.WalkVectors(r, 3000, len(mult.PIs()), 2)
	truth, err := TrueSwitchedCap(mult, walk)
	if err != nil {
		t.Fatal(err)
	}
	ws := AnalyzeWorkload(walk, 1.0)
	if ws.ToggleRate >= 0.4 {
		t.Fatalf("walk toggle rate %v not low enough to discriminate", ws.ToggleRate)
	}
	errs := ModelErrors(chMult, capPerGate, truth, ws)
	absA := math.Abs(errs["activity"])
	absF := math.Abs(errs["fixed"])
	absG := math.Abs(errs["gatecount"])
	if absA >= absF {
		t.Errorf("activity model error %v should beat fixed %v", absA, absF)
	}
	if absF >= absG {
		t.Errorf("fixed model error %v should beat cross-calibrated gate count %v", absF, absG)
	}
	// Activity model should be decently accurate in absolute terms.
	if absA > 0.30 {
		t.Errorf("activity model error %v too large", absA)
	}
}

func TestModelsAgreeOnCalibrationWorkload(t *testing.T) {
	// On the same statistics used for calibration, fixed and activity
	// models should both land near the truth.
	nw, err := circuits.Comparator(6)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	ch, err := Characterize("cmp6", nw, r, 2000)
	if err != nil {
		t.Fatal(err)
	}
	vecs := sim.RandomVectors(r, 3000, len(nw.PIs()), 0.5)
	truth, err := TrueSwitchedCap(nw, vecs)
	if err != nil {
		t.Fatal(err)
	}
	ws := AnalyzeWorkload(vecs, 1.0)
	errs := ModelErrors(ch, CalibrateGateCount(ch), truth, ws)
	for _, m := range []string{"fixed", "activity"} {
		if math.Abs(errs[m]) > 0.15 {
			t.Errorf("%s model error %v on calibration-like workload", m, errs[m])
		}
	}
	// Gate-count model self-calibrated on the same module is also fine
	// here (its failure is cross-module transfer).
	if math.Abs(errs["gatecount"]) > 0.15 {
		t.Errorf("self-calibrated gatecount error %v", errs["gatecount"])
	}
}

func TestActiveFractionScalesPredictions(t *testing.T) {
	ch := Characterization{Name: "m", GateCount: 100, FixedCap: 50,
		ActPoints: [][2]float64{{0, 10}, {0.5, 50}, {1, 90}}}
	if ch.PredictFixed(0.5) != 25 {
		t.Error("fixed prediction should scale with activation")
	}
	full := ch.PredictActivity(1.0, 0.25)
	half := ch.PredictActivity(0.5, 0.25)
	if math.Abs(full-2*half) > 1e-9 {
		t.Error("activity prediction should scale with activation")
	}
	if ch.PredictActivity(1.0, -10) != 10 {
		t.Error("below-range toggle rate should clamp to the first point")
	}
	if ch.PredictActivity(1.0, 2) != 90 {
		t.Error("above-range toggle rate should clamp to the last point")
	}
	if got := ch.PredictActivity(1.0, 0.25); got != 30 {
		t.Errorf("interpolated prediction = %v, want 30", got)
	}
	if (Characterization{FixedCap: 7}).PredictActivity(1.0, 0.5) != 7 {
		t.Error("empty table should fall back to FixedCap")
	}
	if CalibrateGateCount(Characterization{}) != 0 {
		t.Error("zero gate count calibration should be 0")
	}
}

func TestInputToggleRate(t *testing.T) {
	alternating := [][]bool{{false, false}, {true, true}, {false, false}}
	if got := inputToggleRate(alternating); got != 1.0 {
		t.Errorf("toggle rate = %v, want 1", got)
	}
	if inputToggleRate(nil) != 0 {
		t.Error("empty stream toggle rate should be 0")
	}
}
