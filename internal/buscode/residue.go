package buscode

import "fmt"

// OneHotResidue implements Chren's one-hot residue coding [11]: a value is
// represented in a residue number system with pairwise-coprime moduli,
// each residue digit transmitted one-hot. Incrementing a value rotates
// each one-hot digit by one position, so arithmetic progressions toggle
// exactly two lines per digit regardless of word width, and RNS addition
// itself reduces to rotation — the source of the low delay-power product.
type OneHotResidue struct {
	Moduli []int
	state  []bool
	rx     []bool
	lines  int
	rng    uint
}

// NewOneHotResidue builds a coder over the given moduli. The coder can
// represent values in [0, Π moduli).
func NewOneHotResidue(moduli []int) (*OneHotResidue, error) {
	if len(moduli) == 0 {
		return nil, fmt.Errorf("buscode: residue coder needs moduli")
	}
	prod := uint(1)
	lines := 0
	for i, m := range moduli {
		if m < 2 {
			return nil, fmt.Errorf("buscode: modulus %d invalid", m)
		}
		for j := 0; j < i; j++ {
			if gcd(m, moduli[j]) != 1 {
				return nil, fmt.Errorf("buscode: moduli %d and %d not coprime", m, moduli[j])
			}
		}
		prod *= uint(m)
		lines += m
	}
	o := &OneHotResidue{Moduli: append([]int(nil), moduli...), lines: lines, rng: prod}
	o.Reset()
	return o, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Range returns the number of representable values (product of moduli).
func (o *OneHotResidue) Range() uint { return o.rng }

// Name implements Encoder.
func (o *OneHotResidue) Name() string { return fmt.Sprintf("onehot-rns%v", o.Moduli) }

// Lines implements Encoder.
func (o *OneHotResidue) Lines() int { return o.lines }

// Encode implements Encoder.
func (o *OneHotResidue) Encode(word uint) []bool {
	word %= o.rng
	out := make([]bool, o.lines)
	base := 0
	for _, m := range o.Moduli {
		out[base+int(word)%m] = true
		base += m
	}
	copy(o.state, out)
	return out
}

// Decode implements Encoder (Chinese Remainder reconstruction).
func (o *OneHotResidue) Decode(lines []bool) uint {
	base := 0
	var residues []int
	for _, m := range o.Moduli {
		r := -1
		for i := 0; i < m; i++ {
			if lines[base+i] {
				r = i
				break
			}
		}
		if r < 0 {
			r = 0
		}
		residues = append(residues, r)
		base += m
	}
	// CRT by search is fine for the small ranges used here.
	for v := uint(0); v < o.rng; v++ {
		ok := true
		for i, m := range o.Moduli {
			if int(v)%m != residues[i] {
				ok = false
				break
			}
		}
		if ok {
			return v
		}
	}
	return 0
}

// Reset implements Encoder.
func (o *OneHotResidue) Reset() {
	o.state = make([]bool, o.lines)
	o.rx = make([]bool, o.lines)
}

// AddConstRotation models RNS addition of a constant as per-digit
// rotation: it returns the line vector of value+delta given the line
// vector of value, touching each digit with exactly one rotate — the
// constant-time arithmetic structure of [11].
func (o *OneHotResidue) AddConstRotation(lines []bool, delta uint) []bool {
	out := make([]bool, o.lines)
	base := 0
	for _, m := range o.Moduli {
		shift := int(delta) % m
		for i := 0; i < m; i++ {
			out[base+(i+shift)%m] = lines[base+i]
		}
		base += m
	}
	return out
}
