// Package buscode implements the datapath encoding techniques of survey
// §III.C.1: bus-invert coding with an extra E line (Stan/Burleson [39]),
// Gray-coded address buses, transition signaling, and the one-hot residue
// number coding of Chren [11]. A common harness counts bus-line
// transitions — the quantity proportional to I/O power — over arbitrary
// word streams.
package buscode

import "fmt"

// Encoder maps a stream of data words to bus line values. Encoders are
// stateful: several codes depend on the previously transmitted lines.
type Encoder interface {
	Name() string
	// Lines is the number of physical bus lines used.
	Lines() int
	// Encode returns the line values transmitted for the next word.
	Encode(word uint) []bool
	// Decode recovers the word from received line values (stateful,
	// mirrors Encode).
	Decode(lines []bool) uint
	// Reset returns the encoder and decoder to the initial bus state.
	Reset()
}

// Binary is the unencoded baseline: word bits drive the lines directly.
type Binary struct {
	W int
}

// Name implements Encoder.
func (b *Binary) Name() string { return fmt.Sprintf("binary%d", b.W) }

// Lines implements Encoder.
func (b *Binary) Lines() int { return b.W }

// Encode implements Encoder.
func (b *Binary) Encode(word uint) []bool { return toBits(word, b.W) }

// Decode implements Encoder.
func (b *Binary) Decode(lines []bool) uint { return fromBits(lines) }

// Reset implements Encoder.
func (b *Binary) Reset() {}

// BusInvert implements the survey's worked example: an extra line E
// signals that the transmitted word is bitwise complemented. Before each
// transfer the sender counts how many lines would toggle; if more than
// half, it sends the complement with E=1. The survey's example: previous
// 0000, current 1011 → transmit 0100 with E asserted.
type BusInvert struct {
	W     int
	prev  []bool // previous line values (data lines only)
	prevE bool
}

// NewBusInvert returns a bus-invert coder for w data bits (w+1 lines).
func NewBusInvert(w int) *BusInvert {
	b := &BusInvert{W: w}
	b.Reset()
	return b
}

// Name implements Encoder.
func (b *BusInvert) Name() string { return fmt.Sprintf("businvert%d", b.W) }

// Lines implements Encoder.
func (b *BusInvert) Lines() int { return b.W + 1 }

// Encode implements Encoder.
func (b *BusInvert) Encode(word uint) []bool {
	cur := toBits(word, b.W)
	toggles := 0
	for i, v := range cur {
		if v != b.prev[i] {
			toggles++
		}
	}
	// The decision in [39]: invert when more than half the data lines
	// would toggle (ties favour no inversion).
	invert := toggles > b.W/2
	out := make([]bool, b.W+1)
	for i, v := range cur {
		if invert {
			out[i] = !v
		} else {
			out[i] = v
		}
	}
	out[b.W] = invert
	copy(b.prev, out[:b.W])
	b.prevE = invert
	return out
}

// Decode implements Encoder.
func (b *BusInvert) Decode(lines []bool) uint {
	data := make([]bool, b.W)
	copy(data, lines[:b.W])
	if lines[b.W] {
		for i := range data {
			data[i] = !data[i]
		}
	}
	return fromBits(data)
}

// Reset implements Encoder.
func (b *BusInvert) Reset() {
	b.prev = make([]bool, b.W)
	b.prevE = false
}

// GrayCode transmits the Gray encoding of each word — one line toggle per
// unit step, ideal for instruction-address buses.
type GrayCode struct {
	W int
}

// Name implements Encoder.
func (g *GrayCode) Name() string { return fmt.Sprintf("gray%d", g.W) }

// Lines implements Encoder.
func (g *GrayCode) Lines() int { return g.W }

// Encode implements Encoder.
func (g *GrayCode) Encode(word uint) []bool { return toBits(word^(word>>1), g.W) }

// Decode implements Encoder.
func (g *GrayCode) Decode(lines []bool) uint {
	v := fromBits(lines)
	for shift := uint(1); shift < uint(g.W); shift <<= 1 {
		v ^= v >> shift
	}
	return v & ((1 << uint(g.W)) - 1)
}

// Reset implements Encoder.
func (g *GrayCode) Reset() {}

// TransitionSignal sends each word as the XOR of the new value with the
// previous line state, so the number of line toggles equals the weight of
// the word rather than the Hamming distance between consecutive words —
// a limited-weight-code building block from [39]. It pays off when words
// are sparse (few 1 bits).
type TransitionSignal struct {
	W       int
	state   []bool
	rxState []bool
}

// NewTransitionSignal returns a transition-signaling coder.
func NewTransitionSignal(w int) *TransitionSignal {
	t := &TransitionSignal{W: w}
	t.Reset()
	return t
}

// Name implements Encoder.
func (t *TransitionSignal) Name() string { return fmt.Sprintf("transition%d", t.W) }

// Lines implements Encoder.
func (t *TransitionSignal) Lines() int { return t.W }

// Encode implements Encoder.
func (t *TransitionSignal) Encode(word uint) []bool {
	bits := toBits(word, t.W)
	out := make([]bool, t.W)
	for i := range out {
		out[i] = t.state[i] != bits[i] // toggle line i iff bit i set... (XOR accumulate)
		t.state[i] = out[i]
	}
	return out
}

// Decode implements Encoder.
func (t *TransitionSignal) Decode(lines []bool) uint {
	bits := make([]bool, t.W)
	for i := range bits {
		bits[i] = lines[i] != t.rxState[i]
		t.rxState[i] = lines[i]
	}
	return fromBits(bits)
}

// Reset implements Encoder.
func (t *TransitionSignal) Reset() {
	t.state = make([]bool, t.W)
	t.rxState = make([]bool, t.W)
}

func toBits(v uint, w int) []bool {
	out := make([]bool, w)
	for i := 0; i < w; i++ {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}

func fromBits(bits []bool) uint {
	var v uint
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Stats aggregates a transition-count run.
type Stats struct {
	Encoder     string
	Lines       int
	Words       int
	Transitions int64
}

// PerWord is the average line transitions per transferred word.
func (s Stats) PerWord() float64 {
	if s.Words == 0 {
		return 0
	}
	return float64(s.Transitions) / float64(s.Words)
}

// CountTransitions drives the encoder over the word stream and counts bus
// line transitions (lines start at the reset state of all-zero). It also
// verifies the decode path and returns an error on any mismatch.
func CountTransitions(e Encoder, words []uint) (Stats, error) {
	e.Reset()
	st := Stats{Encoder: e.Name(), Lines: e.Lines(), Words: len(words)}
	prev := make([]bool, e.Lines())
	for i, w := range words {
		lines := e.Encode(w)
		if len(lines) != e.Lines() {
			return st, fmt.Errorf("buscode: %s emitted %d lines, declared %d", e.Name(), len(lines), e.Lines())
		}
		got := e.Decode(lines)
		if got != w {
			return st, fmt.Errorf("buscode: %s decode mismatch at word %d: sent %#x got %#x", e.Name(), i, w, got)
		}
		for j, v := range lines {
			if v != prev[j] {
				st.Transitions++
			}
		}
		copy(prev, lines)
	}
	return st, nil
}
