package buscode

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestBusInvertPaperExample(t *testing.T) {
	// Survey example: previous value 0000, current 1011 → transmit 0100
	// with E asserted (the complement of 1011), then complement at the
	// receiver.
	b := NewBusInvert(4)
	first := b.Encode(0x0)
	if fromBits(first[:4]) != 0 || first[4] {
		t.Fatalf("first transfer should be 0000/E=0, got %v", first)
	}
	second := b.Encode(0xB) // 1011
	if !second[4] {
		t.Error("E line should be asserted for 0000 -> 1011")
	}
	if got := fromBits(second[:4]); got != 0x4 { // 0100
		t.Errorf("transmitted %04b, want 0100", got)
	}
	if b.Decode(second) != 0xB {
		t.Error("receiver should recover 1011")
	}
}

func TestBusInvertBoundsToggles(t *testing.T) {
	// Bus-invert guarantees at most ceil((W+1)/2) transitions per word
	// counting the E line.
	b := NewBusInvert(8)
	r := rand.New(rand.NewSource(2))
	prev := make([]bool, b.Lines())
	for i := 0; i < 2000; i++ {
		w := uint(r.Intn(256))
		lines := b.Encode(w)
		if b.Decode(lines) != w {
			t.Fatal("decode mismatch")
		}
		toggles := 0
		for j := range lines {
			if lines[j] != prev[j] {
				toggles++
			}
		}
		if toggles > (8+1)/2+1 {
			t.Fatalf("word %d: %d toggles exceeds bus-invert bound", i, toggles)
		}
		copy(prev, lines)
	}
}

func TestAllCodersRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ohr, err := NewOneHotResidue([]int{3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	coders := []Encoder{
		&Binary{W: 8},
		NewBusInvert(8),
		&GrayCode{W: 8},
		NewTransitionSignal(8),
		ohr,
	}
	for _, e := range coders {
		e.Reset()
		maxVal := uint(256)
		if o, ok := e.(*OneHotResidue); ok {
			maxVal = o.Range()
		}
		for i := 0; i < 500; i++ {
			w := uint(r.Intn(int(maxVal)))
			if got := e.Decode(e.Encode(w)); got != w {
				t.Fatalf("%s: round trip %#x -> %#x", e.Name(), w, got)
			}
		}
	}
}

func TestCountTransitionsVerifiesDecode(t *testing.T) {
	words := []uint{0, 11, 4, 255, 128, 1}
	for _, e := range []Encoder{&Binary{W: 8}, NewBusInvert(8), &GrayCode{W: 8}} {
		st, err := CountTransitions(e, words)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if st.Words != len(words) || st.Transitions <= 0 {
			t.Errorf("%s: degenerate stats %+v", e.Name(), st)
		}
	}
	if (Stats{}).PerWord() != 0 {
		t.Error("empty stats PerWord should be 0")
	}
}

func TestBusInvertSavesOnRandomTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	words := make([]uint, 20000)
	for i := range words {
		words[i] = uint(r.Intn(1 << 8))
	}
	bin, err := CountTransitions(&Binary{W: 8}, words)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := CountTransitions(NewBusInvert(8), words)
	if err != nil {
		t.Fatal(err)
	}
	// Random 8-bit traffic: binary ~4 toggles/word; bus-invert saves a
	// measurable fraction even after paying for the E line.
	if bi.Transitions >= bin.Transitions {
		t.Errorf("bus-invert (%d) should beat binary (%d) on random traffic",
			bi.Transitions, bin.Transitions)
	}
	saving := 1 - float64(bi.Transitions)/float64(bin.Transitions)
	if saving < 0.05 || saving > 0.35 {
		t.Errorf("bus-invert saving %.3f outside the expected 5-35%% band", saving)
	}
}

func TestGrayWinsOnSequentialAddresses(t *testing.T) {
	words := make([]uint, 4096)
	for i := range words {
		words[i] = uint(i % 256)
	}
	bin, _ := CountTransitions(&Binary{W: 8}, words)
	gray, _ := CountTransitions(&GrayCode{W: 8}, words)
	// Sequential counting: binary averages ~2 toggles/word, Gray exactly 1.
	if gray.PerWord() > 1.01 {
		t.Errorf("gray sequential toggles/word = %v, want ~1", gray.PerWord())
	}
	if bin.PerWord() < 1.9 {
		t.Errorf("binary sequential toggles/word = %v, want ~2", bin.PerWord())
	}
}

func TestTransitionSignalWinsOnSparseData(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	words := make([]uint, 8000)
	for i := range words {
		// Sparse: each bit set with probability 0.1.
		var w uint
		for b := 0; b < 8; b++ {
			if r.Float64() < 0.1 {
				w |= 1 << uint(b)
			}
		}
		words[i] = w
	}
	bin, _ := CountTransitions(&Binary{W: 8}, words)
	ts, _ := CountTransitions(NewTransitionSignal(8), words)
	if ts.Transitions >= bin.Transitions {
		t.Errorf("transition signaling (%d) should beat binary (%d) on sparse data",
			ts.Transitions, bin.Transitions)
	}
}

func TestOneHotResidueCountingToggles(t *testing.T) {
	ohr, err := NewOneHotResidue([]int{3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint, 1000)
	for i := range words {
		words[i] = uint(i) % ohr.Range()
	}
	st, err := CountTransitions(ohr, words)
	if err != nil {
		t.Fatal(err)
	}
	// Counting: each of the 3 digits rotates by one each step: exactly 2
	// toggles per digit per step = 6 per word (after the first).
	per := float64(st.Transitions-3) / float64(len(words)-1)
	if per < 5.9 || per > 6.1 {
		t.Errorf("one-hot residue counting toggles/word = %v, want 6", per)
	}
	// A 7-bit binary bus covering a similar range (105 < 128) averages ~2
	// toggles/word on counting, but the residue coder's toggles are
	// CONSTANT (worst case = average), whereas binary's worst case is 7.
	// Verify the constancy claim.
	prev := make([]bool, ohr.Lines())
	ohr.Reset()
	worst := 0
	for i, w := range words {
		lines := ohr.Encode(w)
		tg := 0
		for j := range lines {
			if lines[j] != prev[j] {
				tg++
			}
		}
		copy(prev, lines)
		if i > 0 && tg > worst {
			worst = tg
		}
	}
	if worst != 6 {
		t.Errorf("worst-case toggles = %d, want constant 6", worst)
	}
}

func TestOneHotResidueValidation(t *testing.T) {
	if _, err := NewOneHotResidue(nil); err == nil {
		t.Error("empty moduli should fail")
	}
	if _, err := NewOneHotResidue([]int{4, 6}); err == nil {
		t.Error("non-coprime moduli should fail")
	}
	if _, err := NewOneHotResidue([]int{1, 3}); err == nil {
		t.Error("modulus 1 should fail")
	}
}

func TestAddConstRotation(t *testing.T) {
	ohr, err := NewOneHotResidue([]int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint(0); v < ohr.Range(); v++ {
		lines := ohr.Encode(v)
		for delta := uint(0); delta < 5; delta++ {
			rot := ohr.AddConstRotation(lines, delta)
			want := (v + delta) % ohr.Range()
			if got := ohr.Decode(rot); got != want {
				t.Fatalf("rotation add: %d + %d = %d, want %d", v, delta, got, want)
			}
		}
	}
}

func TestCorrelatedTrafficAblatesBusInvert(t *testing.T) {
	// On random-walk (highly correlated) traffic, consecutive words differ
	// in few bits, so bus-invert rarely fires and saves little — the
	// workload-dependence ablation.
	r := rand.New(rand.NewSource(11))
	walk := sim.WalkVectors(r, 10000, 8, 2)
	words := make([]uint, len(walk))
	for i, v := range walk {
		words[i] = sim.BitsToUint(v)
	}
	bin, _ := CountTransitions(&Binary{W: 8}, words)
	bi, _ := CountTransitions(NewBusInvert(8), words)
	randSaving := 0.11 // expected saving on random traffic (approx)
	corrSaving := 1 - float64(bi.Transitions)/float64(bin.Transitions)
	if corrSaving > randSaving {
		t.Errorf("correlated saving %.3f should be below random-traffic saving %.3f",
			corrSaving, randSaving)
	}
}
