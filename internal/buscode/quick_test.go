package buscode

import (
	"testing"
	"testing/quick"
)

// Property: every coder decodes what it encodes, for arbitrary word
// sequences (stateful coders included).
func TestCodersRoundTripProperty(t *testing.T) {
	mk := map[string]func() Encoder{
		"binary":     func() Encoder { return &Binary{W: 8} },
		"businvert":  func() Encoder { return NewBusInvert(8) },
		"gray":       func() Encoder { return &GrayCode{W: 8} },
		"transition": func() Encoder { return NewTransitionSignal(8) },
	}
	for name, make := range mk {
		make := make
		f := func(words []byte) bool {
			e := make()
			for _, w := range words {
				if e.Decode(e.Encode(uint(w))) != uint(w) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: bus-invert never toggles more than ceil((W+1)/2) lines per
// word, its design guarantee.
func TestBusInvertBoundProperty(t *testing.T) {
	f := func(words []byte) bool {
		e := NewBusInvert(8)
		prev := make([]bool, e.Lines())
		for _, w := range words {
			lines := e.Encode(uint(w))
			toggles := 0
			for i := range lines {
				if lines[i] != prev[i] {
					toggles++
				}
			}
			copy(prev, lines)
			if toggles > 5 { // ceil(9/2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: residue coding is a bijection on its range.
func TestResidueBijectionProperty(t *testing.T) {
	ohr, err := NewOneHotResidue([]int{3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		w := uint(raw) % ohr.Range()
		return ohr.Decode(ohr.Encode(w)) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
