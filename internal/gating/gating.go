// Package gating implements gated clocks (survey §III.C.3): detecting
// cycles in which registers need not load and shutting their clocks off.
// The FSM transformation follows Benini and De Micheli [4]: synthesize an
// activation function that is false exactly on the self-loop edges of the
// state transition graph, and gate the state register with it. Savings are
// accounted explicitly: the clock line into each flip-flop is the one net
// guaranteed to switch every cycle in an ungated design, so stopping it
// for idle registers removes clockCap·Vdd²·f per gated cycle, at the cost
// of the activation logic and the gating latch.
package gating

import (
	"fmt"
	"math/rand"

	"repro/internal/encode"
	"repro/internal/logic"
	"repro/internal/power"
	"repro/internal/sop"
	"repro/internal/stg"
)

// Gated is a synthesized FSM whose state register is clock-gated on
// self-loops.
type Gated struct {
	Network *logic.Network
	// Enable is the activation-function node: false in a cycle means the
	// state register's clock is stopped (the registers hold via
	// recirculation in this model, which is functionally identical).
	Enable logic.NodeID
	// GatingGates is the number of gates added for the activation function
	// and hold muxes (the overhead the survey warns about).
	GatingGates int
	// HoldMuxes lists the recirculation-mux nodes. They exist so that the
	// gated network simulates correctly with an always-running clock; real
	// clock gating stops the clock instead (one latch+AND cell for the
	// whole register bank), so power accounting excludes them and charges
	// a gating-cell term instead.
	HoldMuxes map[logic.NodeID]bool
}

// GateSelfLoops synthesizes the machine under the encoding and adds
// self-loop clock gating. The returned network is functionally identical
// to encode.Synthesize(g, e); the Enable node reports when the clock
// would actually tick.
func GateSelfLoops(g *stg.STG, e encode.Encoding) (*Gated, error) {
	nw, err := encode.Synthesize(g, e)
	if err != nil {
		return nil, err
	}
	before := nw.NumGates()

	// Activation function: EN = NOT(OR of self-loop edge cubes) over
	// (inputs, state bits).
	nVars := g.NumInputs + e.Bits
	selfLoop := sop.NewCover(nVars)
	for _, ed := range g.Edges {
		if ed.From != ed.To {
			continue
		}
		cube := sop.NewCube(nVars)
		for i, ch := range ed.In {
			switch ch {
			case '0':
				cube[i] = sop.Zero
			case '1':
				cube[i] = sop.One
			}
		}
		code := e.Code[ed.From]
		for b := 0; b < e.Bits; b++ {
			if code&(1<<uint(b)) != 0 {
				cube[g.NumInputs+b] = sop.One
			} else {
				cube[g.NumInputs+b] = sop.Zero
			}
		}
		selfLoop.Cubes = append(selfLoop.Cubes, cube)
	}
	minLoop, err := sop.Minimize(selfLoop, sop.MinimizeOptions{})
	if err != nil {
		return nil, err
	}
	vars := make([]logic.NodeID, nVars)
	for i := 0; i < g.NumInputs; i++ {
		id := nw.ByName(fmt.Sprintf("x%d", i))
		if id == logic.InvalidNode {
			return nil, fmt.Errorf("gating: input x%d missing from synthesized FSM", i)
		}
		vars[i] = id
	}
	for b := 0; b < e.Bits; b++ {
		id := nw.ByName(fmt.Sprintf("q%d", b))
		if id == logic.InvalidNode {
			return nil, fmt.Errorf("gating: state bit q%d missing from synthesized FSM", b)
		}
		vars[g.NumInputs+b] = id
	}
	loopNode, err := sop.SynthesizeCover(nw, "selfloop", minLoop, vars)
	if err != nil {
		return nil, err
	}
	en, err := nw.AddGate("gate_en", logic.Not, loopNode)
	if err != nil {
		return nil, err
	}

	// Hold muxes: D' = EN ? D : Q. Functionally a no-op on self-loops (the
	// next state equals the current state there), so equivalence is
	// preserved; the mux stands in for the stopped clock.
	muxes := make(map[logic.NodeID]bool)
	for b := 0; b < e.Bits; b++ {
		ff := nw.ByName(fmt.Sprintf("q%d", b))
		d := nw.Node(ff).Fanin[0]
		t1, err := nw.AddGate(fmt.Sprintf("gm%d_a", b), logic.And, en, d)
		if err != nil {
			return nil, err
		}
		nen, err := invOf(nw, en)
		if err != nil {
			return nil, err
		}
		t0, err := nw.AddGate(fmt.Sprintf("gm%d_b", b), logic.And, nen, ff)
		if err != nil {
			return nil, err
		}
		mux, err := nw.AddGate(fmt.Sprintf("gm%d", b), logic.Or, t1, t0)
		if err != nil {
			return nil, err
		}
		if err := nw.ReplaceFanin(ff, d, mux); err != nil {
			return nil, err
		}
		muxes[t0] = true
		muxes[t1] = true
		muxes[mux] = true
	}
	return &Gated{Network: nw, Enable: en, GatingGates: nw.NumGates() - before, HoldMuxes: muxes}, nil
}

func invOf(nw *logic.Network, id logic.NodeID) (logic.NodeID, error) {
	for _, c := range nw.Node(id).Fanout() {
		cn := nw.Node(c)
		if cn != nil && cn.Type == logic.Not {
			return c, nil
		}
	}
	return nw.AddGate(nw.Node(id).Name+"_n", logic.Not, id)
}

// ClockReport accounts for clock-tree power at the registers, the term
// omitted by combinational estimators.
type ClockReport struct {
	Cycles         int
	FFs            int
	ActiveCycles   int // cycles in which the (gated) clock ticked
	ClockPower     float64
	LogicPower     float64
	EnableFraction float64
}

// Total is clock plus logic power.
func (c ClockReport) Total() float64 { return c.ClockPower + c.LogicPower }

// MeasureClockPower simulates the network over random input vectors and
// returns combined logic + clock power. If enable is a valid node, the
// clock to all flip-flops ticks only on cycles where it evaluates true
// (self-loop gating), one always-clocked gating cell is charged, and the
// nodes in excluded (the functional hold muxes) are omitted from logic
// power since real gating stops the clock instead of recirculating data.
// clockCapPerFF is the clock-node capacitance per register.
func MeasureClockPower(nw *logic.Network, enable logic.NodeID, excluded map[logic.NodeID]bool, r *rand.Rand, cycles int, p power.Params, clockCapPerFF float64) (ClockReport, error) {
	return MeasureClockPowerBiased(nw, enable, excluded, r, cycles, p, clockCapPerFF, nil)
}

// MeasureClockPowerBiased is MeasureClockPower with per-input one
// probabilities (nil = uniform 0.5), for workloads like a rarely-asserted
// load line.
func MeasureClockPowerBiased(nw *logic.Network, enable logic.NodeID, excluded map[logic.NodeID]bool, r *rand.Rand, cycles int, p power.Params, clockCapPerFF float64, piProb []float64) (ClockReport, error) {
	st := logic.NewState(nw)
	nIn := len(nw.PIs())
	rep := ClockReport{Cycles: cycles, FFs: len(nw.FFs())}

	// Track logic transitions per node for power (zero-delay).
	prev := make(map[logic.NodeID]bool)
	toggles := make(map[logic.NodeID]int)
	in := make([]bool, nIn)
	for c := 0; c < cycles; c++ {
		for i := range in {
			pr := 0.5
			if piProb != nil {
				pr = piProb[i]
			}
			in[i] = r.Float64() < pr
		}
		if _, err := st.Step(in); err != nil {
			return rep, err
		}
		if enable == logic.InvalidNode || st.Value(enable) {
			rep.ActiveCycles++
		}
		for _, id := range nw.Live() {
			v := st.Value(id)
			if c > 0 && v != prev[id] {
				toggles[id]++
			}
			prev[id] = v
		}
	}
	if cycles > 0 {
		rep.EnableFraction = float64(rep.ActiveCycles) / float64(cycles)
	}
	act := func(id logic.NodeID) float64 {
		if cycles <= 1 || excluded[id] {
			return 0
		}
		return float64(toggles[id]) / float64(cycles-1)
	}
	logicRep := power.Evaluate(nw, p, nil, act)
	rep.LogicPower = logicRep.Total()
	// Clock power: the clock net switches at each register on active
	// cycles; a gated design also pays one always-clocked gating cell for
	// the register bank.
	rep.ClockPower = clockCapPerFF * float64(rep.FFs) * p.Vdd * p.Vdd * p.Freq * rep.EnableFraction
	if enable != logic.InvalidNode {
		rep.ClockPower += 1.0 * p.Vdd * p.Vdd * p.Freq
	}
	return rep, nil
}

// HoldProbability measures, per flip-flop, the fraction of cycles in which
// the register reloads its own value (D == Q) — the idleness statistic
// that makes a register a gating candidate ([9]).
func HoldProbability(nw *logic.Network, r *rand.Rand, cycles int) (map[logic.NodeID]float64, error) {
	st := logic.NewState(nw)
	hold := make(map[logic.NodeID]int)
	in := make([]bool, len(nw.PIs()))
	for c := 0; c < cycles; c++ {
		for i := range in {
			in[i] = r.Intn(2) == 1
		}
		if err := stepObservingHold(st, nw, in, hold); err != nil {
			return nil, err
		}
	}
	out := make(map[logic.NodeID]float64, len(nw.FFs()))
	for _, ff := range nw.FFs() {
		out[ff] = float64(hold[ff]) / float64(cycles)
	}
	return out, nil
}

func stepObservingHold(st *logic.State, nw *logic.Network, in []bool, hold map[logic.NodeID]int) error {
	// Apply inputs and settle without clocking to compare D against Q.
	for i, pi := range nw.PIs() {
		st.SetValue(pi, in[i])
	}
	if err := st.Settle(); err != nil {
		return err
	}
	for _, ff := range nw.FFs() {
		d := nw.Node(ff).Fanin[0]
		if st.Value(d) == st.Value(ff) {
			hold[ff]++
		}
	}
	_, err := st.Step(in)
	return err
}
