package gating

import (
	"math/rand"
	"testing"

	"repro/internal/encode"
	"repro/internal/logic"
	"repro/internal/power"
	"repro/internal/stg"
)

func TestGatedFSMFunctionallyIdentical(t *testing.T) {
	for name, g := range stg.Corpus() {
		e := encode.MinimalBinary(g)
		base, err := encode.Synthesize(g, e)
		if err != nil {
			t.Fatal(err)
		}
		gated, err := GateSelfLoops(g, e)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := gated.Network.Check(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gated.GatingGates <= 0 {
			t.Errorf("%s: no gating logic added", name)
		}
		// Drive both for many cycles.
		r := rand.New(rand.NewSource(3))
		s1 := logic.NewState(base)
		s2 := logic.NewState(gated.Network)
		for c := 0; c < 500; c++ {
			in := make([]bool, g.NumInputs)
			for i := range in {
				in[i] = r.Intn(2) == 1
			}
			o1, err1 := s1.Step(in)
			o2, err2 := s2.Step(in)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("%s cycle %d: gated FSM diverged", name, c)
				}
			}
		}
	}
}

func TestEnableTracksSelfLoops(t *testing.T) {
	// On the idler machine, EN must be false exactly when the STG takes a
	// self-loop.
	g := stg.Corpus()["idler"]
	e := encode.MinimalBinary(g)
	gated, err := GateSelfLoops(g, e)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	st := logic.NewState(gated.Network)
	state := g.Reset
	for c := 0; c < 400; c++ {
		in := make([]bool, g.NumInputs)
		for i := range in {
			in[i] = r.Intn(2) == 1
		}
		next, _, ok := g.Next(state, in)
		if !ok {
			t.Fatal("missing transition")
		}
		// Settle to observe EN before clocking.
		for i, pi := range gated.Network.PIs() {
			st.SetValue(pi, in[i])
		}
		if err := st.Settle(); err != nil {
			t.Fatal(err)
		}
		en := st.Value(gated.Enable)
		if (next == state) == en {
			t.Fatalf("cycle %d: state %s -> %s but EN=%v", c, state, next, en)
		}
		if _, err := st.Step(in); err != nil {
			t.Fatal(err)
		}
		state = next
	}
}

func TestGatingSavesClockPowerOnIdleMachine(t *testing.T) {
	// E12 shape: on the idle-heavy machine, gating cuts total power; the
	// clock term shrinks by the self-loop fraction.
	g := stg.Corpus()["idler"]
	e := encode.MinimalBinary(g)
	base, err := encode.Synthesize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := GateSelfLoops(g, e)
	if err != nil {
		t.Fatal(err)
	}
	p := power.DefaultParams()
	const clockCap = 4.0
	repBase, err := MeasureClockPower(base, logic.InvalidNode, nil, rand.New(rand.NewSource(7)), 4000, p, clockCap)
	if err != nil {
		t.Fatal(err)
	}
	repGated, err := MeasureClockPower(gated.Network, gated.Enable, gated.HoldMuxes, rand.New(rand.NewSource(7)), 4000, p, clockCap)
	if err != nil {
		t.Fatal(err)
	}
	if repBase.EnableFraction != 1.0 {
		t.Errorf("ungated enable fraction = %v, want 1", repBase.EnableFraction)
	}
	if repGated.EnableFraction > 0.7 {
		t.Errorf("idler enable fraction = %v, expected well under 1", repGated.EnableFraction)
	}
	if repGated.ClockPower >= repBase.ClockPower {
		t.Errorf("gated clock power %v should beat ungated %v", repGated.ClockPower, repBase.ClockPower)
	}
	// On a machine this small the activation logic can eat the clock
	// saving (the survey's caveat); the total-power win is demonstrated on
	// the register bank below and in the break-even test.
}

func TestRegisterBankGatingWins(t *testing.T) {
	// The survey's register-file example: a 16-bit register loaded 10%% of
	// cycles. Gating the clock beats load-enable recirculation.
	rb, err := BuildRegisterBank(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Network.Check(); err != nil {
		t.Fatal(err)
	}
	p := power.DefaultParams()
	const clockCap = 2.0
	prob := make([]float64, len(rb.Network.PIs()))
	for i := range prob {
		prob[i] = 0.5
	}
	prob[0] = 0.1 // load line is PI 0
	ungated, err := MeasureClockPowerBiased(rb.Network, logic.InvalidNode, nil,
		rand.New(rand.NewSource(17)), 4000, p, clockCap, prob)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := MeasureClockPowerBiased(rb.Network, rb.Load, rb.HoldMuxes,
		rand.New(rand.NewSource(17)), 4000, p, clockCap, prob)
	if err != nil {
		t.Fatal(err)
	}
	if gated.EnableFraction < 0.05 || gated.EnableFraction > 0.15 {
		t.Errorf("enable fraction = %v, want ~0.1", gated.EnableFraction)
	}
	if gated.Total() >= ungated.Total() {
		t.Errorf("gated register bank %v should beat load-enable muxing %v",
			gated.Total(), ungated.Total())
	}
	// Savings should be substantial (clock mostly off + mux power gone).
	if gated.Total() > 0.7*ungated.Total() {
		t.Errorf("saving too small: %v vs %v", gated.Total(), ungated.Total())
	}
	// Functional sanity: the register holds when load=0.
	st := logic.NewState(rb.Network)
	in := make([]bool, 17)
	in[0] = true // load
	for b := 0; b < 16; b++ {
		in[1+b] = b%3 == 0
	}
	if _, err := st.Step(in); err != nil {
		t.Fatal(err)
	}
	loaded := make([]bool, 16)
	for b, ff := range rb.Network.FFs() {
		loaded[b] = st.Value(ff)
	}
	in[0] = false
	for b := range loaded {
		in[1+b] = !loaded[b] // change the bus; register must not follow
	}
	if _, err := st.Step(in); err != nil {
		t.Fatal(err)
	}
	for b, ff := range rb.Network.FFs() {
		if st.Value(ff) != loaded[b] {
			t.Fatalf("bit %d did not hold with load=0", b)
		}
	}
}

func TestBuildRegisterBankValidation(t *testing.T) {
	if _, err := BuildRegisterBank(0); err == nil {
		t.Error("zero-width bank should fail")
	}
}

func TestGatingBreakEven(t *testing.T) {
	// With a tiny clock capacitance the gating overhead (activation logic
	// + hold muxes) can outweigh the clock saving — the survey's implicit
	// break-even. Verify the crossover exists: gating wins at high clock
	// cap and loses (or wins less) at low clock cap.
	g := stg.Corpus()["idler"]
	e := encode.MinimalBinary(g)
	base, err := encode.Synthesize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := GateSelfLoops(g, e)
	if err != nil {
		t.Fatal(err)
	}
	p := power.DefaultParams()
	saving := func(clockCap float64) float64 {
		rb, err := MeasureClockPower(base, logic.InvalidNode, nil, rand.New(rand.NewSource(9)), 3000, p, clockCap)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := MeasureClockPower(gated.Network, gated.Enable, gated.HoldMuxes, rand.New(rand.NewSource(9)), 3000, p, clockCap)
		if err != nil {
			t.Fatal(err)
		}
		return rb.Total() - rg.Total()
	}
	lo := saving(0.05)
	hi := saving(8.0)
	if hi <= lo {
		t.Errorf("saving should grow with clock capacitance: lo=%v hi=%v", lo, hi)
	}
	if hi <= 0 {
		t.Errorf("gating should win at high clock capacitance, saving %v", hi)
	}
}

func TestHoldProbability(t *testing.T) {
	// A register that reloads a constant holds forever; a toggle register
	// never holds.
	nw := logic.New("h")
	one, err := nw.AddConst("one", true)
	if err != nil {
		t.Fatal(err)
	}
	qc, err := nw.AddDFF("qc", one, true) // loads 1, starts 1: always holds
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := nw.AddConst("c0", false)
	qt, err := nw.AddDFF("qt", c0, false)
	if err != nil {
		t.Fatal(err)
	}
	inv := nw.MustGate("inv", logic.Not, qt)
	if err := nw.ReplaceFanin(qt, c0, inv); err != nil {
		t.Fatal(err)
	}
	if err := nw.DeleteNode(c0); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(qc); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(qt); err != nil {
		t.Fatal(err)
	}
	hold, err := HoldProbability(nw, rand.New(rand.NewSource(1)), 200)
	if err != nil {
		t.Fatal(err)
	}
	if hold[qc] != 1.0 {
		t.Errorf("constant register hold = %v, want 1", hold[qc])
	}
	if hold[qt] != 0.0 {
		t.Errorf("toggle register hold = %v, want 0", hold[qt])
	}
}
