package gating

import (
	"fmt"

	"repro/internal/logic"
)

// RegisterBank models the survey's motivating example for gated clocks: a
// register file or datapath register that is "typically not accessed in
// each clock cycle" [9]. Both variants implement the same function — load
// the data bus when the load input is high, hold otherwise:
//
//   - The ungated variant holds via recirculation multiplexers and a
//     free-running clock (load-enable flip-flops): every cycle pays full
//     clock power plus the mux logic.
//   - The gated variant stops the register clock when load is low: the
//     hold muxes still exist in the netlist (so the logic simulates
//     correctly) but are excluded from power, and one gating cell is
//     charged instead — see MeasureClockPower.
type RegisterBank struct {
	Network *logic.Network
	// Load is the load-enable input (also the gated-clock activation
	// function).
	Load logic.NodeID
	// HoldMuxes lists mux nodes to exclude when modelling clock gating.
	HoldMuxes map[logic.NodeID]bool
}

// BuildRegisterBank constructs a width-bit register with a load input and
// data inputs d0..d{width-1}; outputs are the register bits.
func BuildRegisterBank(width int) (*RegisterBank, error) {
	if width < 1 {
		return nil, fmt.Errorf("gating: register bank width %d", width)
	}
	nw := logic.New(fmt.Sprintf("regbank%d", width))
	load, err := nw.AddInput("load")
	if err != nil {
		return nil, err
	}
	nload, err := nw.AddGate("nload", logic.Not, load)
	if err != nil {
		return nil, err
	}
	muxes := make(map[logic.NodeID]bool)
	for b := 0; b < width; b++ {
		d, err := nw.AddInput(fmt.Sprintf("d%d", b))
		if err != nil {
			return nil, err
		}
		ph, err := nw.AddConst(fmt.Sprintf("__ph%d", b), false)
		if err != nil {
			return nil, err
		}
		q, err := nw.AddDFF(fmt.Sprintf("q%d", b), ph, false)
		if err != nil {
			return nil, err
		}
		t1, err := nw.AddGate(fmt.Sprintf("m%d_a", b), logic.And, load, d)
		if err != nil {
			return nil, err
		}
		t0, err := nw.AddGate(fmt.Sprintf("m%d_b", b), logic.And, nload, q)
		if err != nil {
			return nil, err
		}
		mux, err := nw.AddGate(fmt.Sprintf("m%d", b), logic.Or, t1, t0)
		if err != nil {
			return nil, err
		}
		if err := nw.ReplaceFanin(q, ph, mux); err != nil {
			return nil, err
		}
		if err := nw.DeleteNode(ph); err != nil {
			return nil, err
		}
		if err := nw.MarkOutput(q); err != nil {
			return nil, err
		}
		muxes[t0] = true
		muxes[t1] = true
		muxes[mux] = true
	}
	return &RegisterBank{Network: nw, Load: load, HoldMuxes: muxes}, nil
}
