package bddsynth

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/logic"
)

// smallNetworks returns every combinational generator circuit small
// enough for exhaustive truth-table comparison.
func smallNetworks(t *testing.T) map[string]*logic.Network {
	t.Helper()
	out := make(map[string]*logic.Network)
	for name, gen := range circuits.Generators() {
		nw, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(nw.FFs()) > 0 || len(nw.PIs()) > 14 {
			continue
		}
		out[name] = nw
	}
	if len(out) < 3 {
		t.Fatalf("only %d small combinational generators, want more coverage", len(out))
	}
	return out
}

func equalTables(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestSynthesizeEquivalence forces the MUX rewrite onto every small
// generator circuit and checks the truth table is bit-identical.
func TestSynthesizeEquivalence(t *testing.T) {
	for name, nw := range smallNetworks(t) {
		want, err := nw.TruthTable()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Synthesize(context.Background(), nw, Options{KeepWorse: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Skipped || !res.Applied {
			t.Fatalf("%s: rewrite not applied (skipped=%v reason=%q)", name, res.Skipped, res.Reason)
		}
		if res.MuxGates <= 0 || res.BDDNodes <= 0 {
			t.Fatalf("%s: implausible stats %+v", name, res)
		}
		got, err := nw.TruthTable()
		if err != nil {
			t.Fatalf("%s: rewritten network: %v", name, err)
		}
		if !equalTables(want, got) {
			t.Fatalf("%s: MUX netlist is not functionally equivalent", name)
		}
		if err := nw.Check(); err != nil {
			t.Fatalf("%s: rewritten network fails Check: %v", name, err)
		}
	}
}

// TestSynthesizeAppliesOnlyWhenBetter pins the accept rule: without
// KeepWorse, Applied must equal (After < Before), and the live network
// must be untouched when the candidate loses.
func TestSynthesizeAppliesOnlyWhenBetter(t *testing.T) {
	for name, nw := range smallNetworks(t) {
		before := nw.Clone()
		res, err := Synthesize(context.Background(), nw, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Applied != (res.After < res.Before) {
			t.Fatalf("%s: Applied=%v but After=%v Before=%v", name, res.Applied, res.After, res.Before)
		}
		if !res.Applied && nw.NumGates() != before.NumGates() {
			t.Fatalf("%s: rejected rewrite still mutated the network (%d -> %d gates)",
				name, before.NumGates(), nw.NumGates())
		}
	}
}

// TestSynthesizeSkipsSequential checks flip-flop networks are a skipped
// no-op, never an error.
func TestSynthesizeSkipsSequential(t *testing.T) {
	nw := logic.New("seq")
	a := nw.MustInput("a")
	g := nw.MustGate("g", logic.Not, a)
	q, err := nw.AddDFF("q", g, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(q); err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(context.Background(), nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped || !strings.Contains(res.Reason, "sequential") {
		t.Fatalf("sequential network not skipped: %+v", res)
	}
}

// TestSynthesizeBudgetSkipIsNoOp checks a budget trip leaves the
// network untouched and reports Skipped instead of erroring.
func TestSynthesizeBudgetSkipIsNoOp(t *testing.T) {
	nw, err := circuits.Comparator(16)
	if err != nil {
		t.Fatal(err)
	}
	gates := nw.NumGates()
	// NoReorder pins the fixed declaration order, which cannot fit this
	// budget (the reorder-retry tests pin that premise).
	res, err := Synthesize(context.Background(), nw, Options{
		Budget:    bdd.Budget{MaxNodes: 20000},
		NoReorder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped || !strings.Contains(res.Reason, "budget") {
		t.Fatalf("budget trip not reported as skip: %+v", res)
	}
	if nw.NumGates() != gates {
		t.Fatalf("skipped synthesis mutated the network: %d -> %d gates", gates, nw.NumGates())
	}
	// With sifting enabled the same budget fits and the pass proceeds.
	res, err = Synthesize(context.Background(), nw, Options{
		Budget:    bdd.Budget{MaxNodes: 20000},
		KeepWorse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || !res.Applied {
		t.Fatalf("sifted build under the same budget should apply: %+v", res)
	}
}

// TestSynthesizeDeterministic checks two runs from identical inputs
// produce identical stats and netlists (server responses are cached).
func TestSynthesizeDeterministic(t *testing.T) {
	mk := func() *logic.Network {
		nw, err := circuits.Comparator(10)
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	n1, n2 := mk(), mk()
	r1, err := Synthesize(context.Background(), n1, Options{KeepWorse: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(context.Background(), n2, Options{KeepWorse: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MuxGates != r2.MuxGates || r1.BDDNodes != r2.BDDNodes || r1.After != r2.After {
		t.Fatalf("nondeterministic synthesis: %+v vs %+v", r1, r2)
	}
	if len(r1.Order) != len(r2.Order) {
		t.Fatal("order length differs")
	}
	for i := range r1.Order {
		if r1.Order[i] != r2.Order[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, r1.Order, r2.Order)
		}
	}
	if n1.NumGates() != n2.NumGates() {
		t.Fatalf("gate counts differ: %d vs %d", n1.NumGates(), n2.NumGates())
	}
}
