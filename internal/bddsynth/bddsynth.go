// Package bddsynth implements BDD-derived low-power synthesis in the
// direction of Popel: build the global BDDs of a combinational network
// under dynamic sifting reordering, then map the (small, well-ordered)
// BDD directly to a 2:1-MUX netlist — each internal node becomes one MUX
// selected by its variable — and keep the rewrite only if the estimated
// switching activity improves. The variable order found by sifting is
// what makes the mapping competitive: it simultaneously minimizes node
// count and, through it, the amount of multiplexer hardware that can
// toggle.
package bddsynth

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/logic"
	"repro/internal/power"
)

// Options configures Synthesize. The zero value uses a 1M-node BDD
// budget, sifting reordering, 1995 default power parameters, uniform
// input probabilities, and applies the rewrite only when the estimated
// power improves.
type Options struct {
	// Budget bounds the BDD build; a trip makes Synthesize a skipped
	// no-op, never an error. Zero means 1<<20 nodes.
	Budget bdd.Budget
	// NoReorder disables the sifting pass (for comparison runs).
	NoReorder bool
	// KeepWorse applies the MUX netlist even when its estimated power is
	// not an improvement (used by experiments to measure the raw cost).
	KeepWorse bool
	// InputProb, Params and CapModel feed the propagated-probability
	// scoring estimate. Zero values mean uniform 0.5 inputs and
	// power.DefaultParams.
	InputProb power.Probabilities
	Params    power.Params
	CapModel  power.CapModel
}

// Result reports what Synthesize did.
type Result struct {
	Skipped  bool    // nothing was attempted (sequential, budget trip, ...)
	Reason   string  // why, when Skipped
	Applied  bool    // the MUX netlist was spliced into the network
	BDDNodes int     // live internal BDD nodes after the (re)build
	MuxGates int     // gates emitted for the MUX netlist
	Before   float64 // estimated switching power before
	After    float64 // estimated switching power of the MUX candidate
	Order    []int   // variable order the build settled on
}

// Synthesize rewrites the combinational network as a BDD-derived MUX
// netlist when that lowers the propagated-probability power estimate.
// Sequential networks and budget-tripping builds are skipped, not
// failed, so the transform is safe inside any flow. The candidate is
// evaluated on a clone first; the live network is only mutated when the
// rewrite is accepted.
func Synthesize(ctx context.Context, nw *logic.Network, opt Options) (*Result, error) {
	if opt.Budget == (bdd.Budget{}) {
		opt.Budget = bdd.Budget{MaxNodes: 1 << 20}
	}
	if opt.Params == (power.Params{}) {
		opt.Params = power.DefaultParams()
	}
	if len(nw.FFs()) > 0 {
		return &Result{Skipped: true, Reason: "sequential network"}, nil
	}
	if len(nw.POs()) == 0 || nw.NumGates() == 0 {
		return &Result{Skipped: true, Reason: "nothing to synthesize"}, nil
	}
	before, err := power.EstimatePropagated(nw, opt.Params, opt.CapModel, opt.InputProb)
	if err != nil {
		return nil, fmt.Errorf("bddsynth: scoring input network: %w", err)
	}

	clone := nw.Clone()
	stats, err := emitMux(ctx, clone, opt)
	if err != nil {
		if errors.Is(err, bdd.ErrBudgetExceeded) {
			return &Result{Skipped: true, Reason: "BDD budget exceeded: " + err.Error(), Before: before.Total()}, nil
		}
		return nil, err
	}
	after, err := power.EstimatePropagated(clone, opt.Params, opt.CapModel, opt.InputProb)
	if err != nil {
		return nil, fmt.Errorf("bddsynth: scoring candidate: %w", err)
	}
	res := &Result{
		BDDNodes: stats.bddNodes,
		MuxGates: stats.muxGates,
		Before:   before.Total(),
		After:    after.Total(),
		Order:    stats.order,
	}
	if !opt.KeepWorse && res.After >= res.Before {
		return res, nil
	}
	// Accepted: replay the identical deterministic transform on the live
	// network through the mutation APIs, keeping dirty tracking honest.
	if _, err := emitMux(ctx, nw, opt); err != nil {
		return nil, fmt.Errorf("bddsynth: replaying accepted rewrite: %w", err)
	}
	res.Applied = true
	return res, nil
}

type emitStats struct {
	bddNodes int
	muxGates int
	order    []int
}

// emitMux builds the network's BDDs and splices the MUX mapping in
// place: fresh gates are emitted bottom-up, each primary-output driver
// is redirected to its MUX root, and the displaced logic is swept.
func emitMux(ctx context.Context, nw *logic.Network, opt Options) (*emitStats, error) {
	nb, err := bdd.FromNetworkOpts(ctx, nw, bdd.BuildOptions{
		Budget:  opt.Budget,
		Reorder: bdd.ReorderPolicy{Enable: !opt.NoReorder},
	})
	if err != nil {
		return nil, err
	}
	m := nb.M
	e := &emitter{
		nw: nw, nb: nb,
		memo:   make(map[bdd.Ref]logic.NodeID),
		notSel: make(map[int]logic.NodeID),
		c0:     logic.InvalidNode,
		c1:     logic.InvalidNode,
	}

	// Map each distinct PO driver once, then redirect.
	newDriver := make(map[logic.NodeID]logic.NodeID)
	for _, po := range nw.POs() {
		old := po
		if _, done := newDriver[old]; done {
			continue
		}
		f, ok := nb.Fn[old]
		if !ok {
			return nil, fmt.Errorf("bddsynth: no BDD for PO driver %d", old)
		}
		nd, err := e.emit(f)
		if err != nil {
			return nil, err
		}
		newDriver[old] = nd
	}
	// Deterministic redirect order: follow the PO list.
	redirected := make(map[logic.NodeID]bool)
	for _, po := range nw.POs() {
		old := po
		nd := newDriver[old]
		if redirected[old] || nd == old {
			continue
		}
		redirected[old] = true
		if err := nw.ReplaceNode(old, nd); err != nil {
			return nil, fmt.Errorf("bddsynth: redirecting PO driver %d: %w", old, err)
		}
	}
	nw.SweepDead()
	return &emitStats{
		bddNodes: m.Size() - 2,
		muxGates: e.emitted,
		order:    m.Order(),
	}, nil
}

// emitter maps BDD nodes to MUX gates, sharing subgraphs through the
// memo (the BDD's sharing carries straight over to the netlist) and one
// inverted select line per variable.
type emitter struct {
	nw      *logic.Network
	nb      *bdd.NetworkBDDs
	memo    map[bdd.Ref]logic.NodeID
	notSel  map[int]logic.NodeID
	c0, c1  logic.NodeID // lazily created constant nodes
	emitted int          // gates added by this emitter
}

func (e *emitter) constant(val bool) (logic.NodeID, error) {
	if val {
		if e.c1 == logic.InvalidNode {
			id, err := e.nw.AddConst("", true)
			if err != nil {
				return logic.InvalidNode, err
			}
			e.c1 = id
		}
		return e.c1, nil
	}
	if e.c0 == logic.InvalidNode {
		id, err := e.nw.AddConst("", false)
		if err != nil {
			return logic.InvalidNode, err
		}
		e.c0 = id
	}
	return e.c0, nil
}

// gate adds one auto-named gate and counts it.
func (e *emitter) gate(t logic.GateType, fanin ...logic.NodeID) (logic.NodeID, error) {
	id, err := e.nw.AddGate("", t, fanin...)
	if err == nil {
		e.emitted++
	}
	return id, err
}

func (e *emitter) not(sel logic.NodeID, v int) (logic.NodeID, error) {
	if id, ok := e.notSel[v]; ok {
		return id, nil
	}
	id, err := e.gate(logic.Not, sel)
	if err != nil {
		return logic.InvalidNode, err
	}
	e.notSel[v] = id
	return id, nil
}

// emit lowers one BDD function to gates and returns the driving node.
func (e *emitter) emit(f bdd.Ref) (logic.NodeID, error) {
	switch f {
	case bdd.False:
		return e.constant(false)
	case bdd.True:
		return e.constant(true)
	}
	if id, ok := e.memo[f]; ok {
		return id, nil
	}
	m := e.nb.M
	v := m.Level(f)
	sel := e.nb.Vars[v]
	lo, hi := m.Low(f), m.High(f)

	var id logic.NodeID
	var err error
	switch {
	case lo == bdd.False && hi == bdd.True:
		id = sel // the function IS the select variable
	case lo == bdd.True && hi == bdd.False:
		id, err = e.not(sel, v)
	case hi == bdd.True:
		// sel ? 1 : lo  ==  sel | lo
		var ln logic.NodeID
		if ln, err = e.emit(lo); err == nil {
			id, err = e.gate(logic.Or, sel, ln)
		}
	case hi == bdd.False:
		// sel ? 0 : lo  ==  !sel & lo
		var ln, ns logic.NodeID
		if ln, err = e.emit(lo); err == nil {
			if ns, err = e.not(sel, v); err == nil {
				id, err = e.gate(logic.And, ns, ln)
			}
		}
	case lo == bdd.False:
		// sel ? hi : 0  ==  sel & hi
		var hn logic.NodeID
		if hn, err = e.emit(hi); err == nil {
			id, err = e.gate(logic.And, sel, hn)
		}
	case lo == bdd.True:
		// sel ? hi : 1  ==  !sel | hi
		var hn, ns logic.NodeID
		if hn, err = e.emit(hi); err == nil {
			if ns, err = e.not(sel, v); err == nil {
				id, err = e.gate(logic.Or, ns, hn)
			}
		}
	default:
		// Full 2:1 MUX: (!sel & lo) | (sel & hi).
		var ln, hn, ns, a, b logic.NodeID
		if ln, err = e.emit(lo); err != nil {
			break
		}
		if hn, err = e.emit(hi); err != nil {
			break
		}
		if ns, err = e.not(sel, v); err != nil {
			break
		}
		if a, err = e.gate(logic.And, ns, ln); err != nil {
			break
		}
		if b, err = e.gate(logic.And, sel, hn); err != nil {
			break
		}
		id, err = e.gate(logic.Or, a, b)
	}
	if err != nil {
		return 0, err
	}
	e.memo[f] = id
	return id, nil
}
