// Package retime implements Leiserson-Saxe retiming [24] on logic
// networks — minimum-period retiming via the FEAS algorithm — plus the
// low-power variant of Monteiro, Devadas and Ghosh [29]: among the
// retimings meeting the period, prefer flip-flop positions that filter
// glitchy nets, exploiting the survey's observation that switching
// activity at flip-flop outputs can be far lower than at their inputs
// (registers pass at most one transition per cycle; combinational nets
// pass every spurious one).
package retime

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/logic"
	"repro/internal/power"
	"repro/internal/sim"
)

// Graph is the retiming view of a network: vertices are combinational
// gates plus a host vertex (index 0) standing for the environment
// (PIs/POs); edge weights count the flip-flops along each connection.
type Graph struct {
	// Verts[i] for i >= 1 is the gate's NodeID; Verts[0] is InvalidNode
	// (host).
	Verts []logic.NodeID
	// Index maps gate NodeID -> vertex index.
	Index map[logic.NodeID]int
	// Edges: from, to vertex indices and FF count.
	Edges []Edge
	// Delay per vertex (host = 0).
	Delay []float64

	nw *logic.Network
}

// Edge is one retiming-graph arc.
type Edge struct {
	From, To int
	Weight   int
	// srcNode is the driving node in the original network (gate, PI or
	// constant) that the connection ultimately comes from.
	srcNode logic.NodeID
}

// Host is the environment vertex index.
const Host = 0

// BuildGraph converts a network to its retiming graph. Each gate is a
// vertex with unit delay; chains of DFFs along connections become edge
// weights; PIs and POs attach to the host vertex.
func BuildGraph(nw *logic.Network) (*Graph, error) {
	g := &Graph{Index: make(map[logic.NodeID]int), nw: nw}
	g.Verts = append(g.Verts, logic.InvalidNode) // host
	g.Delay = append(g.Delay, 0)
	for _, id := range nw.Gates() {
		g.Index[id] = len(g.Verts)
		g.Verts = append(g.Verts, id)
		g.Delay = append(g.Delay, 1)
	}
	// traceSrc follows DFF chains back to a non-DFF driver.
	traceSrc := func(id logic.NodeID) (logic.NodeID, int, error) {
		w := 0
		for {
			n := nw.Node(id)
			if n == nil {
				return logic.InvalidNode, 0, fmt.Errorf("retime: dangling node %d", id)
			}
			if n.Type != logic.DFF {
				return id, w, nil
			}
			w++
			id = n.Fanin[0]
		}
	}
	vertexOf := func(id logic.NodeID) int {
		n := nw.Node(id)
		if n.Type.IsGate() {
			return g.Index[id]
		}
		return Host // PIs and constants belong to the environment
	}
	for _, id := range nw.Gates() {
		to := g.Index[id]
		for _, f := range nw.Node(id).Fanin {
			src, w, err := traceSrc(f)
			if err != nil {
				return nil, err
			}
			g.Edges = append(g.Edges, Edge{From: vertexOf(src), To: to, Weight: w, srcNode: src})
		}
	}
	for _, po := range nw.POs() {
		src, w, err := traceSrc(po)
		if err != nil {
			return nil, err
		}
		g.Edges = append(g.Edges, Edge{From: vertexOf(src), To: Host, Weight: w, srcNode: src})
	}
	// FFs feeding other FFs terminating at POs are covered above; FF
	// chains hanging off gates with no gate consumer appear via POs only.
	return g, nil
}

// Period returns the maximum combinational delay under retiming r (nil
// means the identity retiming): the longest vertex-delay path along
// zero-weight edges.
func (g *Graph) Period(r []int) (float64, error) {
	if r == nil {
		r = make([]int, len(g.Verts))
	}
	// Arrival computed by relaxation over zero-weight edges; the graph of
	// zero-weight edges must be acyclic in a well-formed circuit.
	adj := make([][]Edge, len(g.Verts))
	indeg := make([]int, len(g.Verts))
	for _, e := range g.Edges {
		if g.weightR(e, r) == 0 {
			adj[e.From] = append(adj[e.From], e)
			indeg[e.To]++
		}
	}
	arr := make([]float64, len(g.Verts))
	for i := range arr {
		arr[i] = g.Delay[i]
	}
	queue := []int{}
	for v := range indeg {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	worst := 0.0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		processed++
		if arr[v] > worst {
			worst = arr[v]
		}
		for _, e := range adj[v] {
			if arr[v]+g.Delay[e.To] > arr[e.To] {
				arr[e.To] = arr[v] + g.Delay[e.To]
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if processed != len(g.Verts) {
		return 0, fmt.Errorf("retime: zero-weight cycle (period undefined)")
	}
	return worst, nil
}

func (g *Graph) weightR(e Edge, r []int) int {
	return e.Weight + r[e.To] - r[e.From]
}

// Legal reports whether the retiming keeps every edge weight non-negative
// and the host fixed.
func (g *Graph) Legal(r []int) bool {
	if r[Host] != 0 {
		return false
	}
	for _, e := range g.Edges {
		if g.weightR(e, r) < 0 {
			return false
		}
	}
	return true
}

// Feasible runs the FEAS algorithm: it returns a legal retiming achieving
// clock period <= c, or nil if none exists.
func (g *Graph) Feasible(c float64) ([]int, error) {
	n := len(g.Verts)
	r := make([]int, n)
	// FEAS increments every violator, the host included — retimings are
	// relative, so r is normalized to r[Host] = 0 afterwards. (Skipping
	// the host breaks legality on zero-weight edges into it.)
	normalize := func(r []int) []int {
		out := make([]int, len(r))
		for i := range r {
			out[i] = r[i] - r[Host]
		}
		return out
	}
	for iter := 0; iter <= n; iter++ {
		viol, err := g.violators(r, c)
		if err != nil {
			return nil, err
		}
		if len(viol) == 0 {
			rn := normalize(r)
			if !g.Legal(rn) {
				return nil, nil
			}
			return rn, nil
		}
		if iter == n {
			break
		}
		for _, v := range viol {
			r[v]++
		}
	}
	return nil, nil
}

// violators returns vertices whose arrival exceeds c under retiming r.
func (g *Graph) violators(r []int, c float64) ([]int, error) {
	adj := make([][]Edge, len(g.Verts))
	indeg := make([]int, len(g.Verts))
	for _, e := range g.Edges {
		if g.weightR(e, r) == 0 {
			adj[e.From] = append(adj[e.From], e)
			indeg[e.To]++
		}
	}
	arr := make([]float64, len(g.Verts))
	for i := range arr {
		arr[i] = g.Delay[i]
	}
	var queue []int
	for v := range indeg {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		processed++
		for _, e := range adj[v] {
			if arr[v]+g.Delay[e.To] > arr[e.To] {
				arr[e.To] = arr[v] + g.Delay[e.To]
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if processed != len(g.Verts) {
		return nil, fmt.Errorf("retime: zero-weight cycle during FEAS")
	}
	var out []int
	for v := range arr {
		if arr[v] > c+1e-9 {
			out = append(out, v)
		}
	}
	return out, nil
}

// MinPeriod finds the smallest achievable period by binary search over
// integer periods (unit gate delays), returning the period and a retiming
// achieving it.
func (g *Graph) MinPeriod() (float64, []int, error) {
	hi, err := g.Period(nil)
	if err != nil {
		return 0, nil, err
	}
	bestP := hi
	bestR := make([]int, len(g.Verts))
	lo := 1.0
	for lo <= hi {
		mid := float64(int((lo + hi) / 2))
		r, err := g.Feasible(mid)
		if err != nil {
			return 0, nil, err
		}
		if r != nil {
			bestP = mid
			bestR = r
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return bestP, bestR, nil
}

// Apply rebuilds the network with flip-flops repositioned per the
// retiming. New flip-flops initialize to zero, so the retimed circuit is
// equivalent to the original after a warm-up of at most MaxLatency
// cycles (exactly equivalent for pipeline-style circuits once primary
// inputs have propagated).
func (g *Graph) Apply(r []int) (*logic.Network, error) {
	if !g.Legal(r) {
		return nil, fmt.Errorf("retime: illegal retiming")
	}
	nw := g.nw
	out := logic.New(nw.Name + "_rt")
	mapped := make(map[logic.NodeID]logic.NodeID) // original gate/PI -> new node
	for _, pi := range nw.PIs() {
		id, err := out.AddInput(nw.Node(pi).Name)
		if err != nil {
			return nil, err
		}
		mapped[pi] = id
	}
	for _, id := range nw.Live() {
		n := nw.Node(id)
		if n.Type == logic.Const0 || n.Type == logic.Const1 {
			c, err := out.AddConst(n.Name, n.Type == logic.Const1)
			if err != nil {
				return nil, err
			}
			mapped[id] = c
		}
	}
	// delayed(src, k): src's new-network signal delayed through k new FFs,
	// cached for sharing.
	type dk struct {
		src logic.NodeID
		k   int
	}
	ffCache := make(map[dk]logic.NodeID)
	var delayed func(src logic.NodeID, k int) (logic.NodeID, error)
	delayed = func(src logic.NodeID, k int) (logic.NodeID, error) {
		if k == 0 {
			return mapped[src], nil
		}
		if id, ok := ffCache[dk{src, k}]; ok {
			return id, nil
		}
		prev, err := delayed(src, k-1)
		if err != nil {
			return logic.InvalidNode, err
		}
		name := fmt.Sprintf("%s_ff%d", nw.Node(src).Name, k)
		id, err := out.AddDFF(uniqueName(out, name), prev, false)
		if err != nil {
			return logic.InvalidNode, err
		}
		ffCache[dk{src, k}] = id
		return id, nil
	}

	// Rebuild gates in an order where all fanin sources are ready. Gate
	// fanin sources are gates/PIs/consts; gates may depend on gates through
	// zero or more FFs. With positive-weight edges, the source may come
	// later; we iterate until all are built.
	// Collect per-gate fanin edge list in fanin order.
	faninEdges := make(map[logic.NodeID][]Edge)
	{
		for _, id := range nw.Gates() {
			n := nw.Node(id)
			for _, f := range n.Fanin {
				src, w := f, 0
				for nw.Node(src).Type == logic.DFF {
					w++
					src = nw.Node(src).Fanin[0]
				}
				to := g.Index[id]
				from := Host
				if nw.Node(src).Type.IsGate() {
					from = g.Index[src]
				}
				wr := w + r[to] - r[from]
				faninEdges[id] = append(faninEdges[id], Edge{From: from, To: to, Weight: wr, srcNode: src})
			}
		}
	}
	remaining := nw.Gates()
	for len(remaining) > 0 {
		progressed := false
		var next []logic.NodeID
		for _, id := range remaining {
			ready := true
			for _, e := range faninEdges[id] {
				if _, ok := mapped[e.srcNode]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, id)
				continue
			}
			n := nw.Node(id)
			fan := make([]logic.NodeID, len(n.Fanin))
			for i, e := range faninEdges[id] {
				d, err := delayed(e.srcNode, e.Weight)
				if err != nil {
					return nil, err
				}
				fan[i] = d
			}
			nid, err := out.AddGate(uniqueName(out, n.Name), n.Type, fan...)
			if err != nil {
				return nil, err
			}
			mapped[id] = nid
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("retime: cyclic zero-delay dependency while rebuilding")
		}
		remaining = next
	}
	// Primary outputs: original PO weight adjusted by r of the source.
	for _, po := range nw.POs() {
		src, w := po, 0
		for nw.Node(src).Type == logic.DFF {
			w++
			src = nw.Node(src).Fanin[0]
		}
		from := Host
		if nw.Node(src).Type.IsGate() {
			from = g.Index[src]
		}
		wr := w + 0 - r[from] // host r = 0
		d, err := delayed(src, wr)
		if err != nil {
			return nil, err
		}
		if err := out.MarkOutput(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func uniqueName(nw *logic.Network, base string) string {
	if nw.ByName(base) == logic.InvalidNode {
		return base
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s_%d", base, i)
		if nw.ByName(cand) == logic.InvalidNode {
			return cand
		}
	}
}

// FFCount returns the number of flip-flops implied by the retiming, with
// sharing of FF chains at fanout points (max weight per driving node, as
// Apply builds them).
func (g *Graph) FFCount(r []int) int {
	maxW := make(map[logic.NodeID]int)
	for _, e := range g.Edges {
		w := g.weightR(e, r)
		if w > maxW[e.srcNode] {
			maxW[e.srcNode] = w
		}
	}
	total := 0
	for _, w := range maxW {
		total += w
	}
	return total
}

// PowerResult reports a retiming candidate's measured cost.
type PowerResult struct {
	Retiming []int
	Period   float64
	FFs      int
	Power    float64
	Glitches int64
}

// LowPower searches for a retiming meeting the target period (negative =
// the minimum achievable) that minimizes simulated total power, using
// local moves from the min-period solution: the FF-position choices that
// FEAS leaves open are resolved toward registers on glitchy, high-fanout
// nets, which filter spurious transitions [29]. clockCap is charged per
// flip-flop per cycle. The evaluation simulates `vectors`.
func LowPower(nw *logic.Network, targetPeriod float64, vectors [][]bool, p power.Params, clockCap float64) (PowerResult, error) {
	g, err := BuildGraph(nw)
	if err != nil {
		return PowerResult{}, err
	}
	minP, r0, err := g.MinPeriod()
	if err != nil {
		return PowerResult{}, err
	}
	target := targetPeriod
	if target < 0 {
		target = minP
	} else if target < minP {
		return PowerResult{}, fmt.Errorf("retime: target period %v below minimum %v", target, minP)
	} else {
		if rT, err := g.Feasible(target); err == nil && rT != nil {
			r0 = rT
		}
	}

	eval := func(r []int) (PowerResult, error) {
		net, err := g.Apply(r)
		if err != nil {
			return PowerResult{}, err
		}
		rep, tot, err := power.EstimateSimulated(net, p, nil, sim.UnitDelay, vectors)
		if err != nil {
			return PowerResult{}, err
		}
		ffs := len(net.FFs())
		period, err := g.Period(r)
		if err != nil {
			return PowerResult{}, err
		}
		total := rep.Total() + clockCap*float64(ffs)*p.Vdd*p.Vdd*p.Freq
		return PowerResult{
			Retiming: append([]int(nil), r...),
			Period:   period,
			FFs:      ffs,
			Power:    total,
			Glitches: tot.Spurious,
		}, nil
	}
	best, err := eval(r0)
	if err != nil {
		return PowerResult{}, err
	}
	// Candidate generation, two kinds of moves:
	//  - cut moves: increment r for every vertex at combinational depth
	//    >= L, which slides a whole register boundary backwards across a
	//    level — the move that relocates an output register bank into the
	//    middle of glitchy logic;
	//  - single-vertex nudges around the incumbent.
	depth := make([]int, len(g.Verts))
	{
		// Longest path (in gates) from any source, on the full edge set
		// ignoring weights — a static layering for cut construction.
		adj := make([][]int, len(g.Verts))
		indeg := make([]int, len(g.Verts))
		for _, e := range g.Edges {
			if e.To == Host || e.From == e.To {
				continue
			}
			adj[e.From] = append(adj[e.From], e.To)
			indeg[e.To]++
		}
		var queue []int
		for v := range indeg {
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, c := range adj[v] {
				if depth[v]+1 > depth[c] {
					depth[c] = depth[v] + 1
				}
				indeg[c]--
				if indeg[c] == 0 {
					queue = append(queue, c)
				}
			}
		}
	}
	maxDepth := 0
	for _, dv := range depth {
		if dv > maxDepth {
			maxDepth = dv
		}
	}
	tryCand := func(cand []int) error {
		if !g.Legal(cand) {
			return nil
		}
		per, err := g.Period(cand)
		if err != nil || per > target+1e-9 {
			return nil
		}
		res, err := eval(cand)
		if err != nil {
			return err
		}
		if res.Power < best.Power-1e-9 {
			best = res
		}
		return nil
	}
	for level := 1; level <= maxDepth; level++ {
		cand := append([]int(nil), r0...)
		for v := 1; v < len(g.Verts); v++ {
			if depth[v] >= level {
				cand[v]++
			}
		}
		if err := tryCand(cand); err != nil {
			return best, err
		}
	}
	// Single-vertex refinement around the incumbent.
	improved := true
	for rounds := 0; improved && rounds < 6; rounds++ {
		improved = false
		order := make([]int, len(g.Verts))
		for i := range order {
			order[i] = i
		}
		sort.Ints(order)
		before := best.Power
		for _, v := range order {
			if v == Host {
				continue
			}
			for _, dv := range []int{1, -1} {
				cand := append([]int(nil), best.Retiming...)
				cand[v] += dv
				if err := tryCand(cand); err != nil {
					return best, err
				}
			}
		}
		if best.Power < before-1e-9 {
			improved = true
		}
	}
	return best, nil
}

// MeasureFFActivityRatio simulates the network and returns the average
// ratio of flip-flop input (D) activity to output (Q) activity — the
// survey's §III.C.2 observation quantified. Ratios above 1 mean registers
// are filtering spurious transitions.
func MeasureFFActivityRatio(nw *logic.Network, r *rand.Rand, cycles int) (float64, error) {
	s, err := sim.New(nw, sim.UnitDelay)
	if err != nil {
		return 0, err
	}
	vecs := sim.RandomVectors(r, cycles, len(nw.PIs()), 0.5)
	if _, err := s.Run(vecs); err != nil {
		return 0, err
	}
	totD, totQ := 0.0, 0.0
	for _, ff := range nw.FFs() {
		d := nw.Node(ff).Fanin[0]
		totD += s.Activity(d)
		totQ += s.Activity(ff)
	}
	if totQ == 0 {
		return 0, fmt.Errorf("retime: no flip-flop output activity measured")
	}
	return totD / totQ, nil
}
