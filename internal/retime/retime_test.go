package retime

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/power"
	"repro/internal/sim"
)

// parityPipe builds: XOR chain over n inputs followed by two output
// registers — all the registers sit at the end, so retiming can push them
// back into the chain.
func parityPipe(t *testing.T, n int) *logic.Network {
	t.Helper()
	nw := logic.New(fmt.Sprintf("ppipe%d", n))
	var acc logic.NodeID
	for i := 0; i < n; i++ {
		x := nw.MustInput(fmt.Sprintf("x%d", i))
		if i == 0 {
			acc = x
			continue
		}
		acc = nw.MustGate(fmt.Sprintf("p%d", i), logic.Xor, acc, x)
	}
	f1, err := nw.AddDFF("f1", acc, false)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := nw.AddDFF("f2", f1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(f2); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildGraphWeights(t *testing.T) {
	nw := parityPipe(t, 4)
	g, err := BuildGraph(nw)
	if err != nil {
		t.Fatal(err)
	}
	// 3 XOR gates + host.
	if len(g.Verts) != 4 {
		t.Fatalf("verts = %d, want 4", len(g.Verts))
	}
	// The PO edge carries weight 2 (two FFs).
	found := false
	for _, e := range g.Edges {
		if e.To == Host && e.Weight == 2 {
			found = true
		}
	}
	if !found {
		t.Error("missing weight-2 edge to host")
	}
	p, err := g.Period(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p != 3 {
		t.Errorf("identity period = %v, want 3", p)
	}
}

func TestMinPeriodReducesClock(t *testing.T) {
	nw := parityPipe(t, 7)
	g, err := BuildGraph(nw)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := g.Period(nil)
	if err != nil {
		t.Fatal(err)
	}
	minP, r, err := g.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if minP >= p0 {
		t.Errorf("min period %v did not improve on %v", minP, p0)
	}
	if !g.Legal(r) {
		t.Error("returned retiming is illegal")
	}
	// In the Leiserson-Saxe host model, the environment closes the chain
	// into a cycle of 6 unit-delay gates carrying 2 registers, so the best
	// achievable period is ceil(6/2) = 3.
	if minP != 3 {
		t.Errorf("min period = %v, want 3", minP)
	}
}

func TestApplyPreservesBehaviour(t *testing.T) {
	nw := parityPipe(t, 6)
	g, err := BuildGraph(nw)
	if err != nil {
		t.Fatal(err)
	}
	_, r, err := g.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := g.Apply(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Check(); err != nil {
		t.Fatal(err)
	}
	s1 := logic.NewState(nw)
	s2 := logic.NewState(rt)
	rr := rand.New(rand.NewSource(3))
	const warmup = 5
	for c := 0; c < 300; c++ {
		in := make([]bool, 6)
		for i := range in {
			in[i] = rr.Intn(2) == 1
		}
		o1, err1 := s1.Step(in)
		o2, err2 := s2.Step(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if c >= warmup && o1[0] != o2[0] {
			t.Fatalf("cycle %d: retimed output diverged", c)
		}
	}
}

func TestApplyRejectsIllegal(t *testing.T) {
	nw := parityPipe(t, 4)
	g, err := BuildGraph(nw)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]int, len(g.Verts))
	bad[1] = -5
	if _, err := g.Apply(bad); err == nil {
		t.Error("illegal retiming should be rejected")
	}
}

func TestFeasibleInfeasiblePeriod(t *testing.T) {
	nw := parityPipe(t, 8)
	g, err := BuildGraph(nw)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Feasible(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Error("period below one gate delay must be infeasible")
	}
}

// registeredMult wraps an array multiplier with input and output
// registers — the glitchy datapath for the FF-filtering measurement.
func registeredMult(t *testing.T, n int) *logic.Network {
	t.Helper()
	comb, err := circuits.ArrayMultiplier(n)
	if err != nil {
		t.Fatal(err)
	}
	// Add an output register on each product bit.
	outs := append([]logic.NodeID(nil), comb.POs()...)
	nw := comb // mutate in place: replace POs with registered versions
	for i, po := range outs {
		ff, err := nw.AddDFF(fmt.Sprintf("of%d", i), po, false)
		if err != nil {
			t.Fatal(err)
		}
		// Redirect PO i to the register.
		nw.POs()[i] = ff
	}
	return nw
}

func TestFFOutputsFilterGlitches(t *testing.T) {
	// Survey §III.C.2: activity at FF outputs << activity at FF inputs on
	// a glitchy circuit.
	nw := registeredMult(t, 5)
	ratio, err := MeasureFFActivityRatio(nw, rand.New(rand.NewSource(9)), 500)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.3 {
		t.Errorf("D/Q activity ratio = %v, expected well above 1 on a multiplier", ratio)
	}
	// A glitch-free circuit has ratio ~1.
	tree, err := circuits.ParityTree(8)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := tree.AddDFF("of", tree.POs()[0], false)
	if err != nil {
		t.Fatal(err)
	}
	tree.POs()[0] = ff
	ratio2, err := MeasureFFActivityRatio(tree, rand.New(rand.NewSource(9)), 500)
	if err != nil {
		t.Fatal(err)
	}
	if ratio2 > 1.05 {
		t.Errorf("balanced tree D/Q ratio = %v, want ~1", ratio2)
	}
}

func TestLowPowerRetiming(t *testing.T) {
	nw := registeredMult(t, 4)
	r := rand.New(rand.NewSource(17))
	vecs := sim.RandomVectors(r, 200, len(nw.PIs()), 0.5)
	p := power.DefaultParams()

	g, err := BuildGraph(nw)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := g.Period(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LowPower(nw, p0, vecs, p, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period > p0+1e-9 {
		t.Errorf("low-power retiming period %v exceeds target %v", res.Period, p0)
	}
	// The retimed circuit must still behave correctly.
	rt, err := g.Apply(res.Retiming)
	if err != nil {
		t.Fatal(err)
	}
	s1 := logic.NewState(nw)
	s2 := logic.NewState(rt)
	rr := rand.New(rand.NewSource(5))
	for c := 0; c < 200; c++ {
		in := make([]bool, len(nw.PIs()))
		for i := range in {
			in[i] = rr.Intn(2) == 1
		}
		o1, _ := s1.Step(in)
		o2, err := s2.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if c >= 8 {
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("cycle %d bit %d: retimed multiplier diverged", c, i)
				}
			}
		}
	}
	// Identity candidate power for reference: low-power result should not
	// be worse than the identity retiming's measured power.
	ident := make([]int, len(g.Verts))
	identNet, err := g.Apply(ident)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := power.EstimateSimulated(identNet, p, nil, sim.UnitDelay, vecs)
	if err != nil {
		t.Fatal(err)
	}
	identPower := rep.Total() + 2.0*float64(len(identNet.FFs()))*p.Vdd*p.Vdd*p.Freq
	if res.Power > identPower+1e-6 {
		t.Errorf("low-power retiming %v worse than identity %v", res.Power, identPower)
	}
}

func TestLowPowerTargetValidation(t *testing.T) {
	nw := parityPipe(t, 6)
	vecs := sim.RandomVectors(rand.New(rand.NewSource(1)), 50, 6, 0.5)
	if _, err := LowPower(nw, 0.5, vecs, power.DefaultParams(), 1.0); err == nil {
		t.Error("target below minimum should fail")
	}
}

func TestFFCount(t *testing.T) {
	nw := parityPipe(t, 4)
	g, err := BuildGraph(nw)
	if err != nil {
		t.Fatal(err)
	}
	ident := make([]int, len(g.Verts))
	if got := g.FFCount(ident); got != 2 {
		t.Errorf("identity FF count = %d, want 2", got)
	}
}
