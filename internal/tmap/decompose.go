package tmap

import (
	"fmt"

	"repro/internal/logic"
)

// Subject is the NAND2/INV subject graph of a network, plus the mapping
// from original nodes to their subject-graph counterparts.
type Subject struct {
	Net *logic.Network
	// OfOrig maps each live original node to the subject node computing
	// the same function.
	OfOrig map[logic.NodeID]logic.NodeID
}

// DecomposeOptions controls technology decomposition — itself a lever for
// power, as Tsui/Pedram/Despain note in "Technology Decomposition and
// Mapping Targeting Low Power Dissipation" [48]: the decomposition shape
// determines which cells can cover the graph.
type DecomposeOptions struct {
	// Balanced builds balanced AND/OR trees for wide gates instead of the
	// default left-deep chains. Left-deep chains expose NAND3-style
	// patterns; balanced trees expose NAND4/AOI22-style patterns and cut
	// subject-graph depth.
	Balanced bool
}

// Decompose converts a network into its NAND2/INV subject graph with
// default (left-deep) decomposition. Xor and Xnor gates are emitted in the
// duplicated 4-NAND shape that the XOR2 pattern expects. Buf gates
// collapse to wires.
func Decompose(nw *logic.Network) (*Subject, error) {
	return DecomposeWith(nw, DecomposeOptions{})
}

// DecomposeWith is Decompose with explicit options.
func DecomposeWith(nw *logic.Network, opts DecomposeOptions) (*Subject, error) {
	s := &Subject{Net: logic.New(nw.Name + "_subject"), OfOrig: make(map[logic.NodeID]logic.NodeID)}
	sn := s.Net
	seq := 0
	fresh := func() string { seq++; return fmt.Sprintf("t%d", seq) }
	mkNand := func(a, b logic.NodeID) (logic.NodeID, error) {
		return sn.AddGate(fresh(), logic.Nand, a, b)
	}
	mkInv := func(a logic.NodeID) (logic.NodeID, error) {
		return sn.AddGate(fresh(), logic.Not, a)
	}

	for _, pi := range nw.PIs() {
		id, err := sn.AddInput(nw.Node(pi).Name)
		if err != nil {
			return nil, err
		}
		s.OfOrig[pi] = id
	}
	// DFF outputs are sources; create with placeholder D, patch later.
	type ffFix struct {
		subjFF logic.NodeID
		origD  logic.NodeID
		ph     logic.NodeID
	}
	var fixes []ffFix
	for _, ff := range nw.FFs() {
		n := nw.Node(ff)
		ph, err := sn.AddConst("__ph_"+n.Name, false)
		if err != nil {
			return nil, err
		}
		q, err := sn.AddDFF(n.Name, ph, n.InitVal)
		if err != nil {
			return nil, err
		}
		s.OfOrig[ff] = q
		fixes = append(fixes, ffFix{subjFF: q, origD: n.Fanin[0], ph: ph})
	}

	// split picks the recursion partition: left-deep peels one element,
	// balanced halves the list.
	split := func(args []logic.NodeID) ([]logic.NodeID, []logic.NodeID) {
		if opts.Balanced {
			return args[:len(args)/2], args[len(args)/2:]
		}
		return args[:1], args[1:]
	}
	// andTree computes the AND of the list as a subject subgraph.
	var andTree func(args []logic.NodeID) (logic.NodeID, error)
	var nandTree func(args []logic.NodeID) (logic.NodeID, error)
	nandTree = func(args []logic.NodeID) (logic.NodeID, error) {
		switch len(args) {
		case 1:
			return mkInv(args[0])
		case 2:
			return mkNand(args[0], args[1])
		default:
			l, r := split(args)
			al, err := andTree(l)
			if err != nil {
				return logic.InvalidNode, err
			}
			ar, err := andTree(r)
			if err != nil {
				return logic.InvalidNode, err
			}
			return mkNand(al, ar)
		}
	}
	andTree = func(args []logic.NodeID) (logic.NodeID, error) {
		if len(args) == 1 {
			return args[0], nil
		}
		n, err := nandTree(args)
		if err != nil {
			return logic.InvalidNode, err
		}
		return mkInv(n)
	}
	var orTree func(args []logic.NodeID) (logic.NodeID, error)
	orTree = func(args []logic.NodeID) (logic.NodeID, error) {
		switch len(args) {
		case 1:
			return args[0], nil
		case 2:
			i0, err := mkInv(args[0])
			if err != nil {
				return logic.InvalidNode, err
			}
			i1, err := mkInv(args[1])
			if err != nil {
				return logic.InvalidNode, err
			}
			return mkNand(i0, i1)
		default:
			l, r := split(args)
			ol, err := orTree(l)
			if err != nil {
				return logic.InvalidNode, err
			}
			orr, err := orTree(r)
			if err != nil {
				return logic.InvalidNode, err
			}
			i0, err := mkInv(ol)
			if err != nil {
				return logic.InvalidNode, err
			}
			i1, err := mkInv(orr)
			if err != nil {
				return logic.InvalidNode, err
			}
			return mkNand(i0, i1)
		}
	}
	// XOR pair in the duplicated shape: middle NAND built twice.
	xorPair := func(a, b logic.NodeID) (logic.NodeID, error) {
		m1, err := mkNand(a, b)
		if err != nil {
			return logic.InvalidNode, err
		}
		m2, err := mkNand(a, b)
		if err != nil {
			return logic.InvalidNode, err
		}
		n1, err := mkNand(a, m1)
		if err != nil {
			return logic.InvalidNode, err
		}
		n2, err := mkNand(b, m2)
		if err != nil {
			return logic.InvalidNode, err
		}
		return mkNand(n1, n2)
	}

	order, err := nw.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		n := nw.Node(id)
		args := make([]logic.NodeID, len(n.Fanin))
		for i, f := range n.Fanin {
			sf, ok := s.OfOrig[f]
			if !ok {
				return nil, fmt.Errorf("tmap: fanin %d of %q not decomposed", f, n.Name)
			}
			args[i] = sf
		}
		var out logic.NodeID
		switch n.Type {
		case logic.Const0:
			out, err = sn.AddConst(fresh(), false)
		case logic.Const1:
			out, err = sn.AddConst(fresh(), true)
		case logic.Buf:
			out = args[0]
		case logic.Not:
			out, err = mkInv(args[0])
		case logic.And:
			out, err = andTree(args)
		case logic.Nand:
			out, err = nandTree(args)
		case logic.Or:
			out, err = orTree(args)
		case logic.Nor:
			var o logic.NodeID
			o, err = orTree(args)
			if err == nil {
				out, err = mkInv(o)
			}
		case logic.Xor, logic.Xnor:
			out = args[0]
			for _, b := range args[1:] {
				out, err = xorPair(out, b)
				if err != nil {
					break
				}
			}
			if err == nil && n.Type == logic.Xnor {
				out, err = mkInv(out)
			}
		default:
			err = fmt.Errorf("tmap: cannot decompose node type %s", n.Type)
		}
		if err != nil {
			return nil, err
		}
		s.OfOrig[id] = out
	}

	for _, fix := range fixes {
		d, ok := s.OfOrig[fix.origD]
		if !ok {
			return nil, fmt.Errorf("tmap: DFF D-input %d not decomposed", fix.origD)
		}
		if err := sn.ReplaceFanin(fix.subjFF, fix.ph, d); err != nil {
			return nil, err
		}
		if err := sn.DeleteNode(fix.ph); err != nil {
			return nil, err
		}
	}
	for _, po := range nw.POs() {
		if err := sn.MarkOutput(s.OfOrig[po]); err != nil {
			return nil, err
		}
	}
	sn.SweepDead()
	return s, nil
}
