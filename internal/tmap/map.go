package tmap

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/logic"
	"repro/internal/power"
)

// Objective selects the covering cost function.
type Objective int

// Objectives.
const (
	MinArea Objective = iota
	MinDelay
	MinPower
)

func (o Objective) String() string {
	switch o {
	case MinArea:
		return "area"
	case MinDelay:
		return "delay"
	case MinPower:
		return "power"
	}
	return fmt.Sprintf("objective(%d)", int(o))
}

// Options configures mapping.
type Options struct {
	Objective Objective
	Library   *Library // nil = DefaultLibrary
	// InputProb gives source probabilities for the power objective
	// (nil = uniform 0.5).
	InputProb power.Probabilities
	// ExtLoad is the capacitance charged to nets driving primary outputs.
	ExtLoad float64
	// Decompose controls the subject-graph decomposition shape (the [48]
	// lever).
	Decompose DecomposeOptions
}

// Match is one chosen cell instance.
type Match struct {
	Cell *Cell
	Root logic.NodeID // subject node whose function the instance computes
	// PinLeaves[i] is the subject node feeding pin i.
	PinLeaves []logic.NodeID
}

// Mapping is the result of technology mapping.
type Mapping struct {
	Subject  *Subject
	Matches  []Match // in subject topological order
	Area     float64
	Delay    float64
	Power    float64 // Σ activity·pin-capacitance over visible nets
	Activity map[logic.NodeID]float64
}

// Map performs tree-covering technology mapping of the network.
func Map(nw *logic.Network, opts Options) (*Mapping, error) {
	lib := opts.Library
	if lib == nil {
		lib = DefaultLibrary()
	}
	if opts.ExtLoad == 0 {
		opts.ExtLoad = 1.0
	}
	subj, err := DecomposeWith(nw, opts.Decompose)
	if err != nil {
		return nil, err
	}
	sn := subj.Net

	// Exact zero-delay switching activity of every subject net.
	inProb := power.Probabilities{}
	if opts.InputProb != nil {
		// Translate original source IDs to subject IDs.
		for orig, p := range opts.InputProb {
			if sid, ok := subj.OfOrig[orig]; ok {
				inProb[sid] = p
			}
		}
	}
	probs, err := power.ExactProbabilities(sn, inProb)
	if err != nil {
		return nil, err
	}
	act := make(map[logic.NodeID]float64, len(probs))
	for id, p := range probs {
		act[id] = 2 * p * (1 - p)
	}

	// Tree roots: multi-fanout nodes, PO drivers, DFF D-drivers.
	isRoot := make(map[logic.NodeID]bool)
	for _, po := range sn.POs() {
		isRoot[po] = true
	}
	for _, ff := range sn.FFs() {
		isRoot[sn.Node(ff).Fanin[0]] = true
	}
	for _, id := range sn.Gates() {
		if len(sn.Node(id).Fanout()) > 1 {
			isRoot[id] = true
		}
	}

	isSource := func(id logic.NodeID) bool {
		n := sn.Node(id)
		return n == nil || !n.Type.IsGate()
	}

	// DP over subject gates in topological order.
	type best struct {
		cost  float64
		match Match
		ok    bool
	}
	bests := make(map[logic.NodeID]*best)
	leafCost := func(id logic.NodeID) (float64, error) {
		if isSource(id) {
			return 0, nil
		}
		b := bests[id]
		if b == nil || !b.ok {
			return 0, fmt.Errorf("tmap: no match covers subject node %d", id)
		}
		return b.cost, nil
	}

	order, err := sn.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		n := sn.Node(id)
		if !n.Type.IsGate() {
			continue
		}
		b := &best{cost: math.Inf(1)}
		for ci := range lib.Cells {
			cell := &lib.Cells[ci]
			binding := make(map[int]logic.NodeID)
			if !matchPattern(sn, cell.pat, id, true, isRoot, binding) {
				continue
			}
			pins := make([]logic.NodeID, cell.Inputs)
			okPins := true
			for p := 0; p < cell.Inputs; p++ {
				leaf, ok := binding[p]
				if !ok {
					okPins = false
					break
				}
				pins[p] = leaf
			}
			if !okPins {
				continue
			}
			// Distinct leaves for recursive cost.
			distinct := distinctIDs(pins)
			var cost float64
			switch opts.Objective {
			case MinArea:
				cost = cell.Area
				for _, l := range distinct {
					lc, err := leafCost(l)
					if err != nil {
						return nil, err
					}
					cost += lc
				}
			case MinDelay:
				cost = cell.Delay
				worst := 0.0
				for _, l := range distinct {
					lc, err := leafCost(l)
					if err != nil {
						return nil, err
					}
					if lc > worst {
						worst = lc
					}
				}
				cost += worst
			case MinPower:
				cost = 0.01 * cell.Area // small tie-break toward small cells
				for _, l := range pins {
					cost += act[l] * cell.CapPerPin
				}
				for _, l := range distinct {
					lc, err := leafCost(l)
					if err != nil {
						return nil, err
					}
					cost += lc
				}
			}
			if cost < b.cost {
				b.cost = cost
				b.match = Match{Cell: cell, Root: id, PinLeaves: pins}
				b.ok = true
			}
		}
		bests[id] = b
	}

	// Select needed instances starting from roots that matter.
	need := map[logic.NodeID]bool{}
	var stack []logic.NodeID
	for _, po := range sn.POs() {
		if !isSource(po) {
			stack = append(stack, po)
		}
	}
	for _, ff := range sn.FFs() {
		d := sn.Node(ff).Fanin[0]
		if !isSource(d) {
			stack = append(stack, d)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if need[id] {
			continue
		}
		b := bests[id]
		if b == nil || !b.ok {
			return nil, fmt.Errorf("tmap: no match covers needed subject node %d", id)
		}
		need[id] = true
		for _, l := range distinctIDs(b.match.PinLeaves) {
			if !isSource(l) {
				stack = append(stack, l)
			}
		}
	}

	m := &Mapping{Subject: subj, Activity: act}
	var roots []logic.NodeID
	for id := range need {
		roots = append(roots, id)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	// Order matches topologically (by subject topo position).
	pos := make(map[logic.NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	sort.Slice(roots, func(i, j int) bool { return pos[roots[i]] < pos[roots[j]] })
	arrival := make(map[logic.NodeID]float64)
	for _, id := range roots {
		mt := bests[id].match
		m.Matches = append(m.Matches, mt)
		m.Area += mt.Cell.Area
		worst := 0.0
		for _, l := range distinctIDs(mt.PinLeaves) {
			if arrival[l] > worst {
				worst = arrival[l]
			}
		}
		arrival[id] = worst + mt.Cell.Delay
		if arrival[id] > m.Delay {
			m.Delay = arrival[id]
		}
		for _, l := range mt.PinLeaves {
			m.Power += act[l] * mt.Cell.CapPerPin
		}
	}
	for _, po := range sn.POs() {
		m.Power += act[po] * opts.ExtLoad
	}
	return m, nil
}

// matchPattern tries to unify a cell pattern with the subject subtree at
// node. top marks the pattern root (which may sit on a tree boundary);
// internal pattern nodes must be single-fanout non-root gates. binding
// accumulates pin → subject-node assignments and must stay consistent.
func matchPattern(sn *logic.Network, p *pattern, node logic.NodeID, top bool, isRoot map[logic.NodeID]bool, binding map[int]logic.NodeID) bool {
	if p.kind == leafPat {
		if prev, ok := binding[p.pin]; ok {
			return prev == node
		}
		binding[p.pin] = node
		return true
	}
	n := sn.Node(node)
	if n == nil || !n.Type.IsGate() {
		return false
	}
	if !top && isRoot[node] {
		return false // cannot cover across a tree boundary
	}
	switch p.kind {
	case invPat:
		if n.Type != logic.Not {
			return false
		}
		return matchPattern(sn, p.children[0], n.Fanin[0], false, isRoot, binding)
	case nandPat:
		if n.Type != logic.Nand || len(n.Fanin) != 2 {
			return false
		}
		// Try both input orders, backtracking the binding.
		save := snapshot(binding)
		if matchPattern(sn, p.children[0], n.Fanin[0], false, isRoot, binding) &&
			matchPattern(sn, p.children[1], n.Fanin[1], false, isRoot, binding) {
			return true
		}
		restore(binding, save)
		if matchPattern(sn, p.children[0], n.Fanin[1], false, isRoot, binding) &&
			matchPattern(sn, p.children[1], n.Fanin[0], false, isRoot, binding) {
			return true
		}
		restore(binding, save)
		return false
	}
	return false
}

func snapshot(b map[int]logic.NodeID) map[int]logic.NodeID {
	s := make(map[int]logic.NodeID, len(b))
	for k, v := range b {
		s[k] = v
	}
	return s
}

func restore(b map[int]logic.NodeID, s map[int]logic.NodeID) {
	for k := range b {
		delete(b, k)
	}
	for k, v := range s {
		b[k] = v
	}
}

func distinctIDs(ids []logic.NodeID) []logic.NodeID {
	seen := make(map[logic.NodeID]bool, len(ids))
	var out []logic.NodeID
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// ToNetwork expands the mapping back into a primitive-gate network (each
// cell becomes its logic template) for equivalence checking and
// simulation.
func (m *Mapping) ToNetwork(name string) (*logic.Network, error) {
	sn := m.Subject.Net
	out := logic.New(name)
	val := make(map[logic.NodeID]logic.NodeID) // subject -> out
	for _, pi := range sn.PIs() {
		id, err := out.AddInput(sn.Node(pi).Name)
		if err != nil {
			return nil, err
		}
		val[pi] = id
	}
	type ffFix struct {
		ff logic.NodeID
		d  logic.NodeID // subject D driver
		ph logic.NodeID
	}
	var fixes []ffFix
	for _, ff := range sn.FFs() {
		n := sn.Node(ff)
		ph, err := out.AddConst("__ph_"+n.Name, false)
		if err != nil {
			return nil, err
		}
		q, err := out.AddDFF(n.Name, ph, n.InitVal)
		if err != nil {
			return nil, err
		}
		val[ff] = q
		fixes = append(fixes, ffFix{ff: q, d: n.Fanin[0], ph: ph})
	}
	for _, sid := range sn.Live() {
		n := sn.Node(sid)
		if n.Type == logic.Const0 || n.Type == logic.Const1 {
			id, err := out.AddConst(fmt.Sprintf("k%d", sid), n.Type == logic.Const1)
			if err != nil {
				return nil, err
			}
			val[sid] = id
		}
	}
	seq := 0
	for _, mt := range m.Matches {
		ins := make([]logic.NodeID, len(mt.PinLeaves))
		for i, l := range mt.PinLeaves {
			v, ok := val[l]
			if !ok {
				return nil, fmt.Errorf("tmap: match at %d uses unmapped leaf %d", mt.Root, l)
			}
			ins[i] = v
		}
		seq++
		id, err := buildCellLogic(out, fmt.Sprintf("u%d_%s", seq, mt.Cell.Name), mt.Cell.Name, ins)
		if err != nil {
			return nil, err
		}
		val[mt.Root] = id
	}
	for _, fix := range fixes {
		d, ok := val[fix.d]
		if !ok {
			return nil, fmt.Errorf("tmap: DFF D driver %d unmapped", fix.d)
		}
		if err := out.ReplaceFanin(fix.ff, fix.ph, d); err != nil {
			return nil, err
		}
		if err := out.DeleteNode(fix.ph); err != nil {
			return nil, err
		}
	}
	for _, po := range sn.POs() {
		v, ok := val[po]
		if !ok {
			return nil, fmt.Errorf("tmap: PO subject node %d unmapped", po)
		}
		if err := out.MarkOutput(v); err != nil {
			return nil, err
		}
	}
	out.SweepDead()
	return out, nil
}

// buildCellLogic instantiates the primitive-gate template of a named cell.
func buildCellLogic(nw *logic.Network, name, cell string, in []logic.NodeID) (logic.NodeID, error) {
	g := func(t logic.GateType, fanin ...logic.NodeID) (logic.NodeID, error) {
		return nw.AddGate(name+"_"+fmt.Sprint(len(fanin))+t.String(), t, fanin...)
	}
	switch cell {
	case "INV":
		return nw.AddGate(name, logic.Not, in[0])
	case "BUF":
		return nw.AddGate(name, logic.Buf, in[0])
	case "NAND2":
		return nw.AddGate(name, logic.Nand, in[0], in[1])
	case "AND2":
		return nw.AddGate(name, logic.And, in[0], in[1])
	case "NOR2":
		return nw.AddGate(name, logic.Nor, in[0], in[1])
	case "OR2":
		return nw.AddGate(name, logic.Or, in[0], in[1])
	case "NAND3":
		return nw.AddGate(name, logic.Nand, in[0], in[1], in[2])
	case "NAND4":
		return nw.AddGate(name, logic.Nand, in[0], in[1], in[2], in[3])
	case "AOI21":
		a, err := g(logic.And, in[0], in[1])
		if err != nil {
			return logic.InvalidNode, err
		}
		return nw.AddGate(name, logic.Nor, a, in[2])
	case "OAI21":
		o, err := g(logic.Or, in[0], in[1])
		if err != nil {
			return logic.InvalidNode, err
		}
		return nw.AddGate(name, logic.Nand, o, in[2])
	case "AOI22":
		a1, err := g(logic.And, in[0], in[1])
		if err != nil {
			return logic.InvalidNode, err
		}
		a2, err := nw.AddGate(name+"_and2b", logic.And, in[2], in[3])
		if err != nil {
			return logic.InvalidNode, err
		}
		return nw.AddGate(name, logic.Nor, a1, a2)
	case "XOR2":
		return nw.AddGate(name, logic.Xor, in[0], in[1])
	case "XNOR2":
		return nw.AddGate(name, logic.Xnor, in[0], in[1])
	}
	return logic.InvalidNode, fmt.Errorf("tmap: no logic template for cell %q", cell)
}
