// Package tmap implements technology mapping by tree covering on a
// NAND2/INV subject graph, in the DAGON style of Keutzer [20], with
// selectable objectives: area, delay, or power. The power objective
// follows Tiwari/Ashar/Malik [43] and Tsui/Pedram/Despain [48]: the cost
// of a match charges each visible (leaf) net with the switching activity
// it carries times the input capacitance of the pin it drives, so the
// mapper prefers to hide high-activity nets inside complex cells.
package tmap

import "fmt"

// patKind is a node of a cell's pattern tree over the subject graph.
type patKind int

const (
	leafPat patKind = iota
	invPat
	nandPat
)

// pattern is a cell's shape over the NAND2/INV subject graph. Leaves carry
// a pin index; two leaves with the same index must bind the same subject
// node (needed for XOR-class cells, whose NAND realization repeats
// inputs).
type pattern struct {
	kind     patKind
	pin      int
	children []*pattern
}

func leafv(pin int) *pattern      { return &pattern{kind: leafPat, pin: pin} }
func inv(c *pattern) *pattern     { return &pattern{kind: invPat, children: []*pattern{c}} }
func nand(a, b *pattern) *pattern { return &pattern{kind: nandPat, children: []*pattern{a, b}} }

// Cell is one library element.
type Cell struct {
	Name string
	// Area in equivalent minimum-gate units.
	Area float64
	// Delay is the intrinsic propagation delay.
	Delay float64
	// CapPerPin is the input capacitance each pin presents to its driver.
	CapPerPin float64
	// Inputs is the number of distinct pins.
	Inputs int

	pat *pattern
}

// Library is an ordered set of cells. All matching cells compete in the
// covering DP under the selected objective.
type Library struct {
	Cells []Cell
}

// DefaultLibrary returns a small static-CMOS library with 1995-flavour
// relative areas, delays and pin capacitances. Complex cells (AOI/OAI)
// have more series transistors — slower, but they hide internal nets,
// which is exactly what the power objective exploits.
func DefaultLibrary() *Library {
	return &Library{Cells: []Cell{
		{Name: "INV", Area: 1, Delay: 1.0, CapPerPin: 1.0, Inputs: 1,
			pat: inv(leafv(0))},
		{Name: "BUF", Area: 1.5, Delay: 1.5, CapPerPin: 1.0, Inputs: 1,
			pat: inv(inv(leafv(0)))},
		{Name: "NAND2", Area: 2, Delay: 1.2, CapPerPin: 1.1, Inputs: 2,
			pat: nand(leafv(0), leafv(1))},
		{Name: "AND2", Area: 2.5, Delay: 1.8, CapPerPin: 1.1, Inputs: 2,
			pat: inv(nand(leafv(0), leafv(1)))},
		{Name: "NOR2", Area: 2.2, Delay: 1.4, CapPerPin: 1.2, Inputs: 2,
			pat: inv(nand(inv(leafv(0)), inv(leafv(1))))},
		{Name: "OR2", Area: 2.7, Delay: 2.0, CapPerPin: 1.2, Inputs: 2,
			pat: nand(inv(leafv(0)), inv(leafv(1)))},
		{Name: "NAND3", Area: 3, Delay: 1.6, CapPerPin: 1.2, Inputs: 3,
			pat: nand(leafv(0), inv(nand(leafv(1), leafv(2))))},
		{Name: "NAND4", Area: 4, Delay: 2.0, CapPerPin: 1.3, Inputs: 4,
			pat: nand(inv(nand(leafv(0), leafv(1))), inv(nand(leafv(2), leafv(3))))},
		{Name: "AOI21", Area: 3, Delay: 1.7, CapPerPin: 1.2, Inputs: 3,
			pat: inv(nand(nand(leafv(0), leafv(1)), inv(leafv(2))))},
		{Name: "OAI21", Area: 3, Delay: 1.7, CapPerPin: 1.2, Inputs: 3,
			pat: nand(nand(inv(leafv(0)), inv(leafv(1))), leafv(2))},
		{Name: "AOI22", Area: 4, Delay: 2.1, CapPerPin: 1.3, Inputs: 4,
			pat: inv(nand(nand(leafv(0), leafv(1)), nand(leafv(2), leafv(3))))},
		{Name: "XOR2", Area: 4.5, Delay: 2.4, CapPerPin: 1.5, Inputs: 2,
			pat: xorPattern()},
		{Name: "XNOR2", Area: 4.5, Delay: 2.4, CapPerPin: 1.5, Inputs: 2,
			pat: inv(xorPattern())},
	}}
}

// xorPattern is the 4-NAND realization of a ^ b with the shared middle
// NAND duplicated (tree patterns cannot share):
// nand(nand(a, nand(a,b)), nand(b, nand(a,b))). The decomposer emits Xor
// gates in exactly this duplicated shape so the cell can match.
func xorPattern() *pattern {
	return nand(
		nand(leafv(0), nand(leafv(0), leafv(1))),
		nand(leafv(1), nand(leafv(0), leafv(1))),
	)
}

// ByName returns the cell with the given name.
func (l *Library) ByName(name string) (*Cell, error) {
	for i := range l.Cells {
		if l.Cells[i].Name == name {
			return &l.Cells[i], nil
		}
	}
	return nil, fmt.Errorf("tmap: no cell %q", name)
}
