package tmap

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
)

func buildTestNetwork(t *testing.T, gen func() (*logic.Network, error)) *logic.Network {
	t.Helper()
	nw, err := gen()
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestDecomposePreservesFunction(t *testing.T) {
	gens := []func() (*logic.Network, error){
		func() (*logic.Network, error) { return circuits.RippleAdder(4) },
		func() (*logic.Network, error) { return circuits.Comparator(4) },
		func() (*logic.Network, error) { return circuits.ALU(3) },
		func() (*logic.Network, error) { return circuits.ParityTree(6) },
		func() (*logic.Network, error) { return circuits.MuxTree(3) },
	}
	for _, gen := range gens {
		nw := buildTestNetwork(t, gen)
		subj, err := Decompose(nw)
		if err != nil {
			t.Fatal(err)
		}
		if err := subj.Net.Check(); err != nil {
			t.Fatal(err)
		}
		// Subject graph is pure NAND2/INV.
		for _, id := range subj.Net.Gates() {
			n := subj.Net.Node(id)
			switch n.Type {
			case logic.Nand:
				if len(n.Fanin) != 2 {
					t.Errorf("%s: NAND with %d inputs in subject graph", nw.Name, len(n.Fanin))
				}
			case logic.Not:
			default:
				t.Errorf("%s: gate type %s in subject graph", nw.Name, n.Type)
			}
		}
		eq, err := logic.Equivalent(nw, subj.Net)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%s: decomposition changed function", nw.Name)
		}
	}
}

func TestDecomposeSequential(t *testing.T) {
	nw := logic.New("seq")
	x := nw.MustInput("x")
	c0, _ := nw.AddConst("c0", false)
	q, err := nw.AddDFF("q", c0, true)
	if err != nil {
		t.Fatal(err)
	}
	d := nw.MustGate("d", logic.Xor, x, q)
	if err := nw.ReplaceFanin(q, c0, d); err != nil {
		t.Fatal(err)
	}
	if err := nw.DeleteNode(c0); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(q); err != nil {
		t.Fatal(err)
	}
	subj, err := Decompose(nw)
	if err != nil {
		t.Fatal(err)
	}
	if err := subj.Net.Check(); err != nil {
		t.Fatal(err)
	}
	if len(subj.Net.FFs()) != 1 {
		t.Fatalf("want 1 FF, got %d", len(subj.Net.FFs()))
	}
	if !subj.Net.Node(subj.Net.FFs()[0]).InitVal {
		t.Error("FF init value lost")
	}
	// Behavioural comparison over 20 cycles.
	s1 := logic.NewState(nw)
	s2 := logic.NewState(subj.Net)
	for i := 0; i < 20; i++ {
		in := []bool{i%3 != 0}
		o1, err1 := s1.Step(in)
		o2, err2 := s2.Step(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if o1[0] != o2[0] {
			t.Fatalf("cycle %d: behaviour diverged", i)
		}
	}
}

func TestMapPreservesFunction(t *testing.T) {
	for _, obj := range []Objective{MinArea, MinDelay, MinPower} {
		nw := buildTestNetwork(t, func() (*logic.Network, error) { return circuits.Comparator(4) })
		m, err := Map(nw, Options{Objective: obj})
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		mapped, err := m.ToNetwork("mapped")
		if err != nil {
			t.Fatal(err)
		}
		if err := mapped.Check(); err != nil {
			t.Fatal(err)
		}
		eq, err := logic.Equivalent(nw, mapped)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%v mapping changed the function", obj)
		}
		if m.Area <= 0 || m.Delay <= 0 || m.Power <= 0 {
			t.Errorf("%v: degenerate metrics %+v", obj, m)
		}
	}
}

func TestObjectivesOrderMetricsCorrectly(t *testing.T) {
	// Area mapping should not be beaten on area by the others; same for
	// delay and power (each objective optimizes its own metric).
	nw := buildTestNetwork(t, func() (*logic.Network, error) { return circuits.RippleAdder(6) })
	area, err := Map(nw, Options{Objective: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	delay, err := Map(nw, Options{Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := Map(nw, Options{Objective: MinPower})
	if err != nil {
		t.Fatal(err)
	}
	if area.Area > delay.Area+1e-9 || area.Area > pw.Area+1e-9 {
		t.Errorf("area objective lost on area: %v vs %v/%v", area.Area, delay.Area, pw.Area)
	}
	if delay.Delay > area.Delay+1e-9 || delay.Delay > pw.Delay+1e-9 {
		t.Errorf("delay objective lost on delay: %v vs %v/%v", delay.Delay, area.Delay, pw.Delay)
	}
	if pw.Power > area.Power+1e-9 || pw.Power > delay.Power+1e-9 {
		t.Errorf("power objective lost on power: %v vs %v/%v", pw.Power, area.Power, delay.Power)
	}
}

func TestXORCellMatches(t *testing.T) {
	// A bare XOR gate should map to the XOR2 cell (4.5 area) rather than
	// four NAND2s (8 area) under the area objective.
	nw := logic.New("x")
	a := nw.MustInput("a")
	b := nw.MustInput("b")
	x := nw.MustGate("x", logic.Xor, a, b)
	if err := nw.MarkOutput(x); err != nil {
		t.Fatal(err)
	}
	m, err := Map(nw, Options{Objective: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Matches) != 1 || m.Matches[0].Cell.Name != "XOR2" {
		names := []string{}
		for _, mt := range m.Matches {
			names = append(names, mt.Cell.Name)
		}
		t.Errorf("expected single XOR2 match, got %v", names)
	}
}

func TestLibraryByName(t *testing.T) {
	lib := DefaultLibrary()
	c, err := lib.ByName("AOI21")
	if err != nil || c.Inputs != 3 {
		t.Errorf("AOI21 lookup failed: %v %+v", err, c)
	}
	if _, err := lib.ByName("NOPE"); err == nil {
		t.Error("missing cell should error")
	}
}

func TestObjectiveStrings(t *testing.T) {
	if MinArea.String() != "area" || MinDelay.String() != "delay" || MinPower.String() != "power" {
		t.Error("objective names wrong")
	}
}

func TestMapSequentialCircuit(t *testing.T) {
	// Mapping must handle networks with flip-flops (FF D inputs are tree
	// roots).
	nw := logic.New("seqmap")
	x := nw.MustInput("x")
	y := nw.MustInput("y")
	c0, _ := nw.AddConst("c0", false)
	q, err := nw.AddDFF("q", c0, false)
	if err != nil {
		t.Fatal(err)
	}
	d := nw.MustGate("d", logic.And, x, q)
	d2 := nw.MustGate("d2", logic.Or, d, y)
	if err := nw.ReplaceFanin(q, c0, d2); err != nil {
		t.Fatal(err)
	}
	if err := nw.DeleteNode(c0); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(q); err != nil {
		t.Fatal(err)
	}
	m, err := Map(nw, Options{Objective: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := m.ToNetwork("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Check(); err != nil {
		t.Fatal(err)
	}
	s1 := logic.NewState(nw)
	s2 := logic.NewState(mapped)
	for i := 0; i < 30; i++ {
		in := []bool{i%2 == 0, i%5 == 0}
		o1, err1 := s1.Step(in)
		o2, err2 := s2.Step(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if o1[0] != o2[0] {
			t.Fatalf("cycle %d: mapped circuit diverged", i)
		}
	}
}

func TestBalancedDecompositionPreservesFunction(t *testing.T) {
	for _, gen := range []func() (*logic.Network, error){
		func() (*logic.Network, error) { return circuits.ALU(3) },
		func() (*logic.Network, error) { return circuits.Decoder(4) },
		func() (*logic.Network, error) { return circuits.CLAAdder(5) },
	} {
		nw, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		subj, err := DecomposeWith(nw, DecomposeOptions{Balanced: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := subj.Net.Check(); err != nil {
			t.Fatal(err)
		}
		eq, err := logic.Equivalent(nw, subj.Net)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%s: balanced decomposition changed function", nw.Name)
		}
	}
}

func TestBalancedDecompositionReducesDepth(t *testing.T) {
	// A wide AND gate: left-deep chain depth ~n, balanced ~log n.
	nw := logic.New("wide")
	var ins []logic.NodeID
	for i := 0; i < 8; i++ {
		ins = append(ins, nw.MustInput(string(rune('a'+i))))
	}
	g := nw.MustGate("wide_and", logic.And, ins...)
	if err := nw.MarkOutput(g); err != nil {
		t.Fatal(err)
	}
	left, err := DecomposeWith(nw, DecomposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := DecomposeWith(nw, DecomposeOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	_, dl, _ := left.Net.Levels()
	_, db, _ := bal.Net.Levels()
	if db >= dl {
		t.Errorf("balanced depth %d should beat left-deep %d", db, dl)
	}
}

func TestDecompositionAblationThroughMapping(t *testing.T) {
	// Both decompositions must map correctly; the shapes expose different
	// cells (the [48] observation).
	nw, err := circuits.Decoder(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, balanced := range []bool{false, true} {
		m, err := Map(nw, Options{
			Objective: MinArea,
			Decompose: DecomposeOptions{Balanced: balanced},
		})
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := m.ToNetwork("m")
		if err != nil {
			t.Fatal(err)
		}
		eq, err := logic.Equivalent(nw, mapped)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("balanced=%v: mapping changed function", balanced)
		}
	}
	mLeft, err := Map(nw, Options{Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	mBal, err := Map(nw, Options{Objective: MinDelay, Decompose: DecomposeOptions{Balanced: true}})
	if err != nil {
		t.Fatal(err)
	}
	if mBal.Delay > mLeft.Delay {
		t.Errorf("balanced decomposition should not worsen delay mapping: %v vs %v",
			mBal.Delay, mLeft.Delay)
	}
}
